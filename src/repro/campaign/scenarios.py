"""Evaluation scenarios: named, seeded transforms of a loaded dataset.

The UCR Archive paper argues benchmark results should survive perturbed
and degraded data, not just the pristine splits; a *scenario* packages
one such condition as a pure function ``(TrainTestData, seed) ->
TrainTestData`` so the campaign can cross every dataset x method pair
with every condition.

Built-in scenarios follow the trained-clean / eval-perturbed protocol of
``docs/robustness.md`` — the model fits the unmodified training split
and is scored on perturbed test series — except ``label_noise``, which
corrupts the *training labels* (the archive's label-noise guidance) and
scores on clean test data.

Every transform is deterministic in the seed it is given (the runner
passes the derived cell seed), pure (inputs are never mutated), and
registered by name so specs stay JSON-serializable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.datasets.loader import TrainTestData
from repro.datasets.perturb import (
    add_baseline_drift,
    add_dropout,
    add_gaussian_noise,
    add_label_noise,
    add_spikes,
    mask_missing,
    time_warp,
)
from repro.exceptions import CampaignError
from repro.ts.series import Dataset

Transform = Callable[[TrainTestData, int], TrainTestData]


@dataclass(frozen=True)
class Scenario:
    """A named evaluation condition."""

    name: str
    transform: Transform
    description: str


def _with_test_X(data: TrainTestData, X: np.ndarray) -> TrainTestData:
    """The same split with a perturbed test value matrix."""
    test = Dataset(
        X=X, y=data.test.classes_[data.test.y], name=data.test.name
    )
    return TrainTestData(
        train=data.train,
        test=test,
        profile=data.profile,
        validation=data.validation,
    )


def _perturb_test(fn: Callable[[np.ndarray, int], np.ndarray]) -> Transform:
    def transform(data: TrainTestData, seed: int) -> TrainTestData:
        return _with_test_X(data, fn(data.test.X, seed))

    return transform


def _label_noise(data: TrainTestData, seed: int) -> TrainTestData:
    noisy = add_label_noise(
        data.train.classes_[data.train.y], rate=0.1, seed=seed
    )
    train = Dataset(X=data.train.X, y=noisy, name=data.train.name)
    return TrainTestData(
        train=train,
        test=data.test,
        profile=data.profile,
        validation=data.validation,
    )


_SCENARIOS: dict[str, Scenario] = {}


def register_scenario(
    name: str, transform: Transform, description: str = "", overwrite: bool = False
) -> Scenario:
    """Add a scenario to the registry (campaign specs refer to it by name)."""
    if name in _SCENARIOS and not overwrite:
        raise CampaignError(f"scenario {name!r} is already registered")
    scenario = Scenario(name=name, transform=transform, description=description)
    _SCENARIOS[name] = scenario
    return scenario


def scenario_names() -> list[str]:
    """Registered scenario names, sorted."""
    return sorted(_SCENARIOS)


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name (typed error on unknown names)."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise CampaignError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        ) from None


def apply_scenario(data: TrainTestData, name: str, seed: int) -> TrainTestData:
    """Apply the named scenario's transform with the given seed."""
    return get_scenario(name).transform(data, seed)


register_scenario(
    "clean", lambda data, seed: data, "unmodified train/test splits"
)
register_scenario(
    "noise",
    _perturb_test(lambda X, seed: add_gaussian_noise(X, 0.2, seed=seed)),
    "additive Gaussian sensor noise on the test series (sigma=0.2)",
)
register_scenario(
    "spikes",
    _perturb_test(lambda X, seed: add_spikes(X, rate=0.02, seed=seed)),
    "impulse artefacts on the test series (2% of samples)",
)
register_scenario(
    "dropout",
    _perturb_test(lambda X, seed: add_dropout(X, rate=0.05, seed=seed)),
    "isolated missing samples on the test series, interpolated (5%)",
)
register_scenario(
    "drift",
    _perturb_test(lambda X, seed: add_baseline_drift(X, magnitude=0.5, seed=seed)),
    "low-frequency baseline wander on the test series",
)
register_scenario(
    "warp",
    _perturb_test(lambda X, seed: time_warp(X, max_warp=0.05, seed=seed)),
    "global clock-drift resampling of the test series (up to 5%)",
)
register_scenario(
    "missing",
    _perturb_test(
        lambda X, seed: mask_missing(X, rate=0.1, block=5, seed=seed)
    ),
    "contiguous sensor-outage gaps on the test series (10%, block=5), "
    "linearly reconstructed — the UCR Archive's missing-data scenario",
)
register_scenario(
    "label_noise",
    _label_noise,
    "10% symmetric label noise on the training split (clean test) — "
    "the UCR Archive's label-noise scenario",
)


__all__ = [
    "Scenario",
    "Transform",
    "apply_scenario",
    "get_scenario",
    "register_scenario",
    "scenario_names",
]
