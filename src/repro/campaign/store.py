"""Per-cell result files and the campaign manifest.

Layout of a campaign directory::

    <campaign_dir>/
        manifest.json            # fingerprint: spec + retry policy + fault plan
        journal.jsonl            # append-only event log (see journal.py)
        cells/
            <cell_id>.json       # one atomic, checksummed result per cell

Cell files follow the artifact discipline of ``repro.serve.artifact``:
writes are atomic (temp file + ``os.replace``), contents are
deterministic (sorted keys), and every file's SHA-256 is recorded — in
the journal's ``cell_finished`` event at write time, and again in the
report manifest at collection time. Loading verifies the recorded
digest; a mismatch (torn copy, bit rot, a file from a different run)
quarantines the file and reports the cell as missing so the runner
simply recomputes it — corruption costs one cell, never the campaign.

The campaign ``manifest.json`` plays the role of
:meth:`repro.distributed.checkpoint.CheckpointStore.check_manifest`:
resuming into a directory whose fingerprint differs raises
:class:`repro.exceptions.CampaignError` instead of silently merging
results computed under different settings.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from pathlib import Path

from repro.exceptions import CampaignError

#: Bumped whenever the cell-file layout changes incompatibly.
CAMPAIGN_FORMAT_VERSION = 1

_MANIFEST = "manifest.json"
_CELLS = "cells"


def sha256_bytes(payload: bytes) -> str:
    """Hex SHA-256 of a byte string."""
    return hashlib.sha256(payload).hexdigest()


class CellStore:
    """Atomic, checksummed per-cell result files under a campaign dir."""

    def __init__(self, campaign_dir: str | Path) -> None:
        self.campaign_dir = Path(campaign_dir)
        self.cells_dir = self.campaign_dir / _CELLS
        self.cells_dir.mkdir(parents=True, exist_ok=True)

    # -- manifest ---------------------------------------------------------

    def check_manifest(self, fingerprint: dict) -> None:
        """Write the campaign fingerprint, or verify it matches.

        Raises :class:`CampaignError` when the directory already belongs
        to a campaign with a different spec, retry policy, or fault plan
        — results computed under different settings must never merge.
        """
        path = self.campaign_dir / _MANIFEST
        if path.exists():
            try:
                existing = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise CampaignError(
                    f"unreadable campaign manifest at {path}: {exc}"
                ) from exc
            if existing != fingerprint:
                raise CampaignError(
                    f"campaign dir {self.campaign_dir} belongs to a "
                    f"different campaign (manifest differs from the "
                    f"requested spec/policy/fault plan); use a fresh "
                    f"directory or resume with the original settings"
                )
            return
        payload = (json.dumps(fingerprint, indent=2, sort_keys=True) + "\n").encode()
        self._atomic_write(path, payload)

    def read_manifest(self) -> dict:
        """The stored fingerprint (typed error when absent/unreadable)."""
        path = self.campaign_dir / _MANIFEST
        if not path.exists():
            raise CampaignError(
                f"{self.campaign_dir} has no campaign manifest; "
                "was it created by `repro campaign run`?"
            )
        try:
            manifest = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CampaignError(
                f"unreadable campaign manifest at {path}: {exc}"
            ) from exc
        if not isinstance(manifest, dict):
            raise CampaignError(f"campaign manifest at {path} is not an object")
        return manifest

    # -- cell files -------------------------------------------------------

    def cell_path(self, cell_id: str) -> Path:
        """Result-file path of one cell."""
        return self.cells_dir / f"{cell_id}.json"

    @staticmethod
    def _atomic_write(path: Path, payload: bytes) -> None:
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def save_cell(self, cell_id: str, record: dict) -> str:
        """Atomically persist one cell record; returns its SHA-256."""
        payload = (json.dumps(record, indent=2, sort_keys=True) + "\n").encode()
        self._atomic_write(self.cell_path(cell_id), payload)
        return sha256_bytes(payload)

    def load_cell(self, cell_id: str, expected_sha: str | None = None) -> dict | None:
        """Restore one cell record, or ``None`` when it must be recomputed.

        A missing file is simply ``None``. An unreadable file, or one
        whose digest does not match ``expected_sha`` (recorded in the
        journal at write time), is *quarantined* — renamed aside with a
        warning — and reported as missing, so corruption is visible but
        never fatal.
        """
        path = self.cell_path(cell_id)
        if not path.exists():
            return None
        try:
            payload = path.read_bytes()
            if expected_sha is not None and sha256_bytes(payload) != expected_sha:
                raise ValueError(
                    f"checksum mismatch (expected {expected_sha[:12]}...)"
                )
            record = json.loads(payload.decode("utf-8"))
            if not isinstance(record, dict) or "payload" not in record:
                raise ValueError("not a cell record")
        except Exception as exc:  # noqa: BLE001 - any bad file => recompute
            self._quarantine_cell(path, exc)
            return None
        return record

    def _quarantine_cell(self, path: Path, reason: Exception) -> None:
        quarantined = path.with_name(path.name + ".quarantine")
        try:
            os.replace(path, quarantined)
            note = f"moved to {quarantined.name}"
        except OSError:
            note = "could not be moved aside"
        warnings.warn(
            f"cell result {path.name} is unusable ({reason}); {note}; "
            "the cell will be recomputed",
            RuntimeWarning,
            stacklevel=3,
        )

    def cell_ids(self) -> set[str]:
        """Ids of every cell file currently in the store."""
        return {path.stem for path in self.cells_dir.glob("*.json")}


__all__ = ["CAMPAIGN_FORMAT_VERSION", "CellStore", "sha256_bytes"]
