"""Crash-safe, resumable evaluation campaigns.

``repro.campaign`` runs the paper's dataset x method x scenario matrix
as one orchestrated campaign that survives crashes: an append-only JSONL
journal plus atomic, checksummed per-cell result files mean a SIGKILL'd
campaign resumes exactly where it died — completed cells are never
re-run, and the resumed results frame is bit-identical to an
uninterrupted run. Per-cell isolation (retries, backoff, timeouts) turns
a crashing baseline into a typed ``failed`` row instead of an aborted
campaign.

Layering::

    spec       - the matrix + derived per-cell seeds (CampaignSpec/Cell)
    scenarios  - named, seeded dataset perturbations (clean/noise/...)
    journal    - append-only event log with torn-tail recovery
    store      - atomic checksummed cell files + campaign manifest
    runner     - the orchestrator (RetryingExecutor + faults + signals)
    results    - deterministic results frame, CD report, report manifest

See ``docs/campaigns.md`` for the journal format and resume semantics.
"""

from repro.campaign.journal import Journal
from repro.campaign.results import (
    FRAME_COLUMNS,
    ResultsFrame,
    build_frame,
    render_report,
    write_report,
)
from repro.campaign.runner import CampaignRunner, run_cell, validate_cell_result
from repro.campaign.scenarios import (
    Scenario,
    apply_scenario,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.campaign.spec import CampaignCell, CampaignSpec, derive_cell_seed
from repro.campaign.store import CAMPAIGN_FORMAT_VERSION, CellStore, sha256_bytes

__all__ = [
    "CAMPAIGN_FORMAT_VERSION",
    "CampaignCell",
    "CampaignRunner",
    "CampaignSpec",
    "CellStore",
    "FRAME_COLUMNS",
    "Journal",
    "ResultsFrame",
    "Scenario",
    "apply_scenario",
    "build_frame",
    "derive_cell_seed",
    "get_scenario",
    "register_scenario",
    "render_report",
    "run_cell",
    "scenario_names",
    "sha256_bytes",
    "validate_cell_result",
    "write_report",
]
