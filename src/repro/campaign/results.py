"""Campaign results: deterministic frame, accuracy matrices, CD report.

The *results frame* is the campaign's canonical deliverable: one row per
cell in (dataset, method, scenario) order, carrying only fields that are
deterministic functions of the spec (accuracy, status, typed error
provenance — never wall-clock timings). Its :meth:`ResultsFrame.digest`
is therefore reproducible: an uninterrupted campaign and one SIGKILL'd
and resumed N times hash to the same value, which is exactly what the
chaos gate asserts.

``build_frame`` collects a campaign directory through
:func:`repro.benchlib.tables.collect_cell_rows` (tolerant of partial /
failed / corrupt cells), and ``write_report`` emits the paper-style
outputs — per-scenario accuracy tables, the critical-difference diagram
via :mod:`repro.stats.cd_diagram`, a CSV of the frame — together with a
campaign manifest in the run-manifest format (versions, git SHA, and a
checksum table over every emitted file).
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.benchlib.tables import collect_cell_rows, format_table
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CellStore, sha256_bytes

#: Frame columns, in order. All deterministic given the spec; timings
#: are deliberately excluded so the digest is crash/resume-invariant.
FRAME_COLUMNS: tuple[str, ...] = (
    "dataset", "method", "scenario", "status", "error_type",
    "accuracy", "completed",
)


@dataclass(frozen=True)
class ResultsFrame:
    """A small column-oriented results table (no pandas dependency)."""

    columns: dict[str, list] = field(default_factory=dict)

    @property
    def n_rows(self) -> int:
        """Number of rows (cells)."""
        first = next(iter(self.columns.values()), [])
        return len(first)

    def row(self, index: int) -> dict:
        """One row as a dict."""
        return {name: values[index] for name, values in self.columns.items()}

    def rows(self) -> list[dict]:
        """All rows as dicts."""
        return [self.row(i) for i in range(self.n_rows)]

    @classmethod
    def from_rows(cls, rows: list[dict]) -> "ResultsFrame":
        """Build a frame from row dicts, sorted into canonical order."""
        ordered = sorted(
            rows, key=lambda r: (r["dataset"], r["method"], r["scenario"])
        )
        columns: dict[str, list] = {name: [] for name in FRAME_COLUMNS}
        for row in ordered:
            for name in FRAME_COLUMNS:
                columns[name].append(row.get(name))
        return cls(columns=columns)

    # -- canonical serialization -----------------------------------------

    def canonical_json(self) -> str:
        """Strict-JSON rendering of the frame (NaN → null, sorted keys)."""
        rows = []
        for row in self.rows():
            accuracy = row.get("accuracy")
            if isinstance(accuracy, float) and math.isnan(accuracy):
                accuracy = None
            rows.append({**row, "accuracy": accuracy})
        return json.dumps(
            {"columns": list(FRAME_COLUMNS), "rows": rows},
            sort_keys=True,
            allow_nan=False,
        )

    def digest(self) -> str:
        """SHA-256 of the canonical JSON — the chaos gate's identity."""
        return sha256_bytes(self.canonical_json().encode())

    def to_csv(self) -> str:
        """The frame as CSV text (NaN accuracy rendered empty)."""
        lines = [",".join(FRAME_COLUMNS)]
        for row in self.rows():
            cells = []
            for name in FRAME_COLUMNS:
                value = row.get(name)
                if value is None:
                    cells.append("")
                elif isinstance(value, float):
                    cells.append("" if math.isnan(value) else repr(value))
                else:
                    cells.append(str(value))
            lines.append(",".join(cells))
        return "\n".join(lines) + "\n"

    # -- matrices ---------------------------------------------------------

    def accuracy_matrix(
        self, scenario: str, datasets: list[str], methods: list[str]
    ) -> np.ndarray:
        """(datasets x methods) accuracies for one scenario, NaN for holes."""
        lookup = {
            (row["dataset"], row["method"]): row.get("accuracy")
            for row in self.rows()
            if row["scenario"] == scenario
        }
        matrix = np.full((len(datasets), len(methods)), np.nan)
        for i, dataset in enumerate(datasets):
            for j, method in enumerate(methods):
                value = lookup.get((dataset, method))
                if isinstance(value, (int, float)) and value is not None:
                    matrix[i, j] = float(value)
        return matrix


def build_frame(campaign_dir: str | Path, spec: CampaignSpec | None = None) -> ResultsFrame:
    """Collect a campaign directory into a results frame.

    With no explicit spec, the directory's manifest supplies it (the
    normal CLI path). Cells that never ran appear as ``missing`` NaN
    rows, so a crashed campaign still collects.
    """
    if spec is None:
        from repro.campaign.runner import CampaignRunner

        spec = CampaignRunner.from_dir(campaign_dir).spec
    expected = [
        (cell.dataset, cell.method, cell.scenario) for cell in spec.cells()
    ]
    return ResultsFrame.from_rows(collect_cell_rows(campaign_dir, expected))


def render_report(
    frame: ResultsFrame,
    spec: CampaignSpec,
    cd_method: str = "wilcoxon-holm",
) -> str:
    """Per-scenario accuracy tables plus critical-difference diagrams."""
    from repro.stats.cd_diagram import render_cd

    datasets = list(spec.datasets)
    methods = list(spec.methods)
    sections: list[str] = [
        f"Campaign report: {spec.name} "
        f"({len(datasets)} datasets x {len(methods)} methods x "
        f"{len(spec.scenarios)} scenarios, seed {spec.seed})"
    ]
    status_by_key = {
        (row["dataset"], row["method"], row["scenario"]): row
        for row in frame.rows()
    }
    for scenario in spec.scenarios:
        matrix = frame.accuracy_matrix(scenario, datasets, methods)
        rows = []
        for i, dataset in enumerate(datasets):
            cells: list[object] = [dataset]
            for j, method in enumerate(methods):
                value = matrix[i, j]
                if math.isnan(value):
                    row = status_by_key.get((dataset, method, scenario), {})
                    cells.append(row.get("error_type") or row.get("status") or "-")
                else:
                    cells.append(100.0 * value)
            rows.append(cells)
        sections.append(
            format_table(
                ["dataset"] + methods, rows, precision=2,
                title=f"scenario: {scenario}",
            )
        )
        n_failed = int(np.isnan(matrix).sum())
        if n_failed:
            sections.append(
                f"  ({n_failed} cell(s) without accuracy: failed/missing — "
                "ranked worst per the NaN convention)"
            )
        if len(methods) >= 2 and len(datasets) >= 2:
            sections.append(render_cd(methods, matrix, method=cd_method))
    return "\n\n".join(sections) + "\n"


def write_report(
    campaign_dir: str | Path, cd_method: str = "wilcoxon-holm"
) -> Path:
    """Emit the campaign report bundle under ``<campaign_dir>/report/``.

    Writes ``frame.json`` (canonical), ``results.csv``, ``report.txt``,
    and a ``manifest.json`` in the run-manifest format — spec, package
    versions, git SHA, the frame digest, and a SHA-256 checksum table
    over the emitted files (the artifact-layer discipline).
    """
    from repro.campaign.runner import CampaignRunner
    from repro.obs.manifest import git_sha, package_versions

    runner = CampaignRunner.from_dir(campaign_dir)
    spec = runner.spec
    frame = build_frame(campaign_dir, spec)
    report_dir = Path(campaign_dir) / "report"
    report_dir.mkdir(parents=True, exist_ok=True)
    outputs = {
        "frame.json": frame.canonical_json() + "\n",
        "results.csv": frame.to_csv(),
        "report.txt": render_report(frame, spec, cd_method=cd_method),
    }
    files = {}
    for name, text in outputs.items():
        payload = text.encode()
        CellStore._atomic_write(report_dir / name, payload)
        files[name] = sha256_bytes(payload)
    manifest = {
        "format_version": 1,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "spec": spec.to_dict(),
        "frame_sha256": frame.digest(),
        "n_rows": frame.n_rows,
        "versions": package_versions(),
        "git_sha": git_sha(),
        "files": files,
    }
    CellStore._atomic_write(
        report_dir / "manifest.json",
        (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode(),
    )
    return report_dir


__all__ = [
    "FRAME_COLUMNS",
    "ResultsFrame",
    "build_frame",
    "render_report",
    "write_report",
]
