"""Terminal visualization: sparklines, scatter plots, profile plots.

The paper's figures are line charts, scatter plots, and annotated series;
this module renders their monospace equivalents so every figure harness
and example can show its data without a plotting dependency.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.ts.preprocessing import linear_interpolate_resample

#: Density ramp used by :func:`sparkline`.
SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: np.ndarray, width: int = 48) -> str:
    """One-line density sparkline of a series.

    The series is resampled to ``width`` points and mapped onto a
    10-level character ramp; flat series render as a line of the lowest
    level.
    """
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValidationError("cannot sparkline an empty series")
    if width < 1:
        raise ValidationError(f"width must be >= 1, got {width}")
    resampled = linear_interpolate_resample(arr, width)
    lo, hi = float(resampled.min()), float(resampled.max())
    span = hi - lo if hi > lo else 1.0
    levels = ((resampled - lo) / span * (len(SPARK_LEVELS) - 1)).astype(int)
    return "".join(SPARK_LEVELS[level] for level in levels)


def line_plot(
    values: np.ndarray,
    width: int = 64,
    height: int = 10,
    marks: list[int] | None = None,
) -> str:
    """Multi-line character plot of a series.

    Parameters
    ----------
    values:
        The series to plot.
    width, height:
        Canvas size in characters.
    marks:
        Optional sample indices to highlight with ``^`` on a marker row
        (e.g. shapelet start positions, the paper's Fig. 2 arrows).
    """
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValidationError("cannot plot an empty series")
    if width < 2 or height < 2:
        raise ValidationError("width and height must be >= 2")
    resampled = linear_interpolate_resample(arr, width)
    lo, hi = float(resampled.min()), float(resampled.max())
    span = hi - lo if hi > lo else 1.0
    rows = [[" "] * width for _ in range(height)]
    for x, value in enumerate(resampled):
        y = int(round((value - lo) / span * (height - 1)))
        rows[height - 1 - y][x] = "*"
    lines = [f"{hi:10.3g} |" + "".join(rows[0])]
    lines += ["           |" + "".join(row) for row in rows[1:-1]]
    lines.append(f"{lo:10.3g} |" + "".join(rows[-1]))
    if marks:
        marker_row = [" "] * width
        for mark in marks:
            if not 0 <= mark < arr.size:
                continue
            x = int(round(mark / max(arr.size - 1, 1) * (width - 1)))
            marker_row[x] = "^"
        lines.append("           |" + "".join(marker_row))
    return "\n".join(lines)


def scatter_plot(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 48,
    height: int = 16,
    diagonal: bool = True,
    log: bool = False,
) -> str:
    """Character scatter plot, optionally with the ``y = x`` diagonal.

    The paper's Fig. 10(a)/(b) are time-vs-time scatters where every point
    should land above the diagonal; ``diagonal=True`` draws it so the eye
    can check. ``log=True`` plots both axes in log10 (the paper's log
    space), requiring positive values.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.size == 0 or x.shape != y.shape:
        raise ValidationError("x and y must be equal-length and non-empty")
    if log:
        if np.any(x <= 0) or np.any(y <= 0):
            raise ValidationError("log scatter requires positive values")
        x, y = np.log10(x), np.log10(y)
    lo = float(min(x.min(), y.min()))
    hi = float(max(x.max(), y.max()))
    span = hi - lo if hi > lo else 1.0
    rows = [[" "] * width for _ in range(height)]
    if diagonal:
        for col in range(width):
            frac = col / max(width - 1, 1)
            row = int(round(frac * (height - 1)))
            rows[height - 1 - row][col] = "."
    for xi, yi in zip(x, y):
        col = int(round((xi - lo) / span * (width - 1)))
        row = int(round((yi - lo) / span * (height - 1)))
        rows[height - 1 - row][col] = "o"
    lines = ["".join(row) for row in rows]
    lines.append("-" * width)
    label = "(log10 scale)" if log else ""
    lines.append(f"x: {lo:.3g} .. {hi:.3g} {label}  [o above the dots = above y=x]")
    return "\n".join(lines)


def bar_chart(labels: list[str], values: np.ndarray, width: int = 40) -> str:
    """Horizontal bar chart (the accuracy bars of the paper's Fig. 9)."""
    values = np.asarray(values, dtype=np.float64).ravel()
    if len(labels) != values.size or values.size == 0:
        raise ValidationError("labels and values must align and be non-empty")
    peak = float(values.max())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * int(round(value / peak * width))
        lines.append(f"{label.ljust(label_width)} |{bar} {value:.2f}")
    return "\n".join(lines)
