"""Algorithm 4: top-k shapelet selection via a priority queue."""

from __future__ import annotations

import heapq


from repro.core.utility import UtilityScores
from repro.exceptions import ValidationError
from repro.types import Shapelet


def select_top_k(scores: UtilityScores, k: int) -> list[Shapelet]:
    """Poll the k best (lowest-``u``) motif candidates into shapelets.

    Implements Algorithm 4's priority-queue loop: utilities go into a
    min-heap and the first k polls become the class's shapelets. Exact
    duplicates (same values, same provenance) are skipped so that k
    shapelets are k distinct subsequences. Returns fewer than k when the
    pool is smaller.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    combined = scores.combined
    heap: list[tuple[float, int]] = [
        (float(u), idx) for idx, u in enumerate(combined)
    ]
    heapq.heapify(heap)
    selected: list[Shapelet] = []
    seen: set[bytes] = set()
    while heap and len(selected) < k:
        u, idx = heapq.heappop(heap)
        candidate = scores.candidates[idx]
        fingerprint = candidate.values.tobytes()
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        selected.append(Shapelet.from_candidate(candidate, score=u))
    return selected


def select_top_k_per_class(
    scores_by_class: dict[int, UtilityScores], k: int
) -> list[Shapelet]:
    """Run :func:`select_top_k` per class and concatenate (Algorithm 4)."""
    shapelets: list[Shapelet] = []
    for label in sorted(scores_by_class):
        shapelets.extend(select_top_k(scores_by_class[label], k))
    if not shapelets:
        raise ValidationError("no shapelets could be selected from any class")
    return shapelets
