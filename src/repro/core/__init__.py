"""The paper's primary contribution: the IPS shapelet-discovery pipeline.

Stages (Fig. 5 of the paper):

1. candidate generation with the instance profile (Algorithm 1) —
   :mod:`repro.instanceprofile`;
2. candidate pruning with the DABF (Algorithms 2-3) — :mod:`repro.filters`;
3. utility scoring (Definitions 11-13) with the DT & CR optimizations
   (Section III-E) and top-k selection (Algorithm 4) — here;
4. shapelet transform (Def. 7) + linear SVM — here.

:class:`IPS` runs discovery; :class:`IPSClassifier` adds the
transform-and-classify stage behind a ``fit``/``predict`` interface.
"""

from repro.core.budget import Budget, BudgetTracker
from repro.core.analysis import (
    best_matches,
    coverage_summary,
    match_position_histogram,
    shapelet_quality,
)
from repro.core.config import IPSConfig
from repro.core.pipeline import IPS, IPSClassifier
from repro.core.report import describe_discovery
from repro.core.selection import select_top_k
from repro.core.transform import ShapeletTransform
from repro.core.tuning import TuningResult, tune_ips
from repro.core.utility import UtilityScores, score_candidates_brute, score_candidates_dt

__all__ = [
    "Budget",
    "BudgetTracker",
    "IPS",
    "IPSClassifier",
    "IPSConfig",
    "ShapeletTransform",
    "TuningResult",
    "UtilityScores",
    "best_matches",
    "tune_ips",
    "coverage_summary",
    "describe_discovery",
    "match_position_histogram",
    "score_candidates_brute",
    "score_candidates_dt",
    "select_top_k",
    "shapelet_quality",
]
