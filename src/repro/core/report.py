"""Human-readable reports of a discovery run.

``describe_discovery`` turns a :class:`repro.types.DiscoveryResult` into
the summary a practitioner wants after a run: stage timings, per-class
candidate and pruning statistics, the selected shapelets with provenance,
and sparkline renderings of their shapes.
"""

from __future__ import annotations

import numpy as np

from repro.benchlib.tables import format_table
from repro.exceptions import ValidationError
from repro.types import DiscoveryResult
from repro.viz import sparkline


def describe_discovery(result: DiscoveryResult, spark_width: int = 32) -> str:
    """Multi-section text report of one discovery run."""
    if not result.shapelets:
        raise ValidationError("cannot describe a result with no shapelets")
    lines: list[str] = []

    lines.append("discovery summary")
    lines.append("-----------------")
    lines.append(
        f"candidates: {result.n_candidates_generated} generated -> "
        f"{result.n_candidates_after_pruning} kept "
        f"({100 * result.pruning_rate:.1f}% pruned)"
    )
    lines.append(
        f"time: generation {result.time_candidate_generation:.3f}s, "
        f"pruning {result.time_pruning:.3f}s, "
        f"selection {result.time_selection:.3f}s "
        f"(total {result.total_time:.3f}s)"
    )

    prune_report = result.extra.get("prune_report")
    if prune_report is not None and prune_report.removed_per_class:
        rows = [
            [label, prune_report.removed_per_class.get(label, 0),
             prune_report.kept_per_class.get(label, 0)]
            for label in sorted(prune_report.removed_per_class)
        ]
        lines.append("")
        lines.append(
            format_table(
                ["class", "pruned", "kept"], rows, title="DABF pruning per class"
            )
        )

    lines.append("")
    shapelet_rows = [
        [
            shapelet.label,
            shapelet.length,
            shapelet.source_instance,
            shapelet.start,
            shapelet.score,
            sparkline(shapelet.values, width=spark_width),
        ]
        for shapelet in result.shapelets
    ]
    lines.append(
        format_table(
            ["class", "len", "instance", "offset", "utility", "shape"],
            shapelet_rows,
            precision=4,
            title=f"{len(result.shapelets)} selected shapelets",
        )
    )

    scores = np.array([s.score for s in result.shapelets], dtype=float)
    finite = scores[np.isfinite(scores)]
    if finite.size:
        lines.append("")
        lines.append(
            f"utility range: best {finite.min():.4f}, worst {finite.max():.4f}"
        )
    return "\n".join(lines)
