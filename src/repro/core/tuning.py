"""Per-dataset parameter selection for IPS (the paper's §IV-A protocol).

The paper selects ``Q_N`` from {10, 20, 50, 100} and ``Q_S`` from
{2, 3, 4, 5, 10} *per dataset* (and reads k off the Fig. 12 curves).
``tune_ips`` reproduces that protocol honestly: stratified
cross-validation on the *training* set over a configuration grid, never
touching test data.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import product

import numpy as np

from repro.classify.metrics import accuracy_score
from repro.classify.model_selection import StratifiedKFold
from repro.core.config import IPSConfig
from repro.core.pipeline import IPSClassifier
from repro.exceptions import ValidationError
from repro.ts.series import Dataset

#: The paper's §IV-A grids.
PAPER_QN_GRID: tuple[int, ...] = (10, 20, 50, 100)
PAPER_QS_GRID: tuple[int, ...] = (2, 3, 4, 5, 10)
PAPER_K_GRID: tuple[int, ...] = (1, 2, 5, 10, 20)


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a grid search."""

    best_config: IPSConfig
    best_score: float
    scores: dict[tuple, float]

    def top(self, n: int = 5) -> list[tuple[tuple, float]]:
        """The n best (params, cv-score) pairs, best first."""
        ranked = sorted(self.scores.items(), key=lambda item: -item[1])
        return ranked[:n]


def _cv_score(
    config: IPSConfig, dataset: Dataset, n_splits: int
) -> float:
    """Mean stratified-CV accuracy of one configuration."""
    folds = StratifiedKFold(n_splits=n_splits, seed=config.seed)
    correct = total = 0
    for train_idx, test_idx in folds.split(dataset.y):
        train = Dataset(
            X=dataset.X[train_idx],
            y=dataset.classes_[dataset.y[train_idx]],
            name=dataset.name,
        )
        try:
            model = IPSClassifier(config).fit_dataset(train)
            predictions = model.predict(dataset.X[test_idx])
        except Exception:  # noqa: BLE001 - a config can fail on tiny folds
            continue
        truth = dataset.classes_[dataset.y[test_idx]]
        correct += int(np.sum(predictions == truth))
        total += test_idx.size
    return correct / total if total else 0.0


def tune_ips(
    dataset: Dataset,
    base_config: IPSConfig | None = None,
    qn_grid: tuple[int, ...] = (10, 20),
    qs_grid: tuple[int, ...] = (2, 3, 5),
    k_grid: tuple[int, ...] = (5,),
    n_splits: int = 3,
) -> TuningResult:
    """Grid-search ``Q_N`` x ``Q_S`` x ``k`` by stratified CV on ``dataset``.

    Defaults use a reduced grid for laptop budgets; pass
    ``PAPER_QN_GRID`` / ``PAPER_QS_GRID`` / ``PAPER_K_GRID`` for the full
    §IV-A protocol. Ties break toward the cheaper configuration (smaller
    ``Q_N * Q_S``, then smaller ``k``).
    """
    if not qn_grid or not qs_grid or not k_grid:
        raise ValidationError("all grids must be non-empty")
    min_class = int(np.bincount(dataset.y).min())
    n_splits = max(2, min(n_splits, min_class))
    if min_class < 2:
        raise ValidationError("tuning needs at least 2 instances per class")
    base = base_config or IPSConfig()
    scores: dict[tuple, float] = {}
    for q_n, q_s, k in product(qn_grid, qs_grid, k_grid):
        config = replace(base, q_n=q_n, q_s=q_s, k=k)
        scores[(q_n, q_s, k)] = _cv_score(config, dataset, n_splits)
    best_params = min(
        scores,
        key=lambda p: (-scores[p], p[0] * p[1], p[2]),
    )
    best_config = replace(
        base, q_n=best_params[0], q_s=best_params[1], k=best_params[2]
    )
    return TuningResult(
        best_config=best_config,
        best_score=scores[best_params],
        scores=scores,
    )
