"""End-to-end IPS: discovery (Fig. 5) and the transform+SVM classifier."""

from __future__ import annotations

import time
import warnings

import numpy as np

from repro.classify.naive_bayes import GaussianNB
from repro.classify.scaler import StandardScaler
from repro.classify.svm import OneVsRestSVM
from repro.classify.tree import DecisionTree
from repro.core.config import IPSConfig
from repro.core.selection import select_top_k_per_class
from repro.core.transform import ShapeletTransform
from repro.core.utility import (
    UtilityScores,
    _PairDistanceCache,
    score_candidates_brute,
    score_candidates_dt,
)
from repro.exceptions import EmptyPoolError, NotFittedError, ValidationError
from repro.filters.dabf import DABF, NaivePruner, PruneReport
from repro.instanceprofile.candidates import CandidatePool, generate_candidates
from repro.kernels import NULL_PERF_COUNTERS, PerfCounters, SeriesCache
from repro.instanceprofile.sampling import resolve_lengths
from repro.obs import (
    DEFAULT_JSONL_PATH,
    NULL_TRACER,
    global_metrics,
    make_tracer,
    run_manifest,
)
from repro.ts.series import Dataset
from repro.types import DiscoveryResult, ParamsMixin, PredictorMixin, Shapelet


def resolve_kernel_backend(config: IPSConfig, dataset: Dataset):
    """The run's kernel :class:`~repro.kernels.BackendSpec`.

    ``config.kernel_backend == "auto"`` invokes the auto-tuner on the
    training-set shape (never trading precision); a concrete name looks
    up the registry, with ``config.kernel_tile_budget`` overriding the
    tile/auto-tuner budget either way.
    """
    from repro.kernels import choose_backend, get_backend
    from repro.kernels.backends import DEFAULT_TILE_BUDGET

    budget = (
        config.kernel_tile_budget
        if config.kernel_tile_budget is not None
        else DEFAULT_TILE_BUDGET
    )
    if config.kernel_backend == "auto":
        return choose_backend(
            dataset.n_series, dataset.series_length, budget_bytes=budget
        )
    overrides = (
        {"budget_bytes": budget} if config.kernel_tile_budget is not None else {}
    )
    return get_backend(config.kernel_backend, **overrides)


def restore_emptied_classes(
    original: CandidatePool, pruned: CandidatePool
) -> CandidatePool:
    """Undo pruning for any class whose motif set it emptied.

    Algorithm 3 has no guard against removing every motif of a class; a
    class with zero motifs would get zero shapelets and become
    unclassifiable, so pruning falls back to the unpruned motifs for that
    class (a safety net the paper leaves implicit).
    """
    for label in original.classes:
        if not pruned.motifs(label):
            for candidate in original.motifs(label):
                pruned.add(candidate)
    return pruned


def score_with_class_fallback(scorer, pruned, pool, labels, tracer=NULL_TRACER) -> dict:
    """Score every class, surviving a degraded per-class pool.

    ``scorer(active_pool, label)`` computes one class's utilities. When
    the pruned pool is degraded for a class — scoring raises
    :class:`EmptyPoolError`, or it yields no candidates although the
    unpruned pool has motifs for that class (possible after a distributed
    quorum merge lost units) — the class falls back to its *unpruned*
    candidates with a warning, instead of aborting the whole run or
    silently dropping the class. ``tracer`` records one ``utility`` span
    per class (with the fallback flagged) when tracing is active.
    """
    scores_by_class: dict[int, UtilityScores] = {}
    for label in labels:
        with tracer.span("utility", label=label) as span:
            try:
                scores = scorer(pruned, label)
                if not scores.candidates and pool.motifs(label):
                    raise EmptyPoolError(
                        f"pruned pool holds no motif candidates for class {label}"
                    )
            except EmptyPoolError as exc:
                warnings.warn(
                    f"class {label}: degraded pruned pool ({exc}); falling back "
                    "to the unpruned candidates for this class",
                    RuntimeWarning,
                    stacklevel=2,
                )
                span.set(fallback=True, reason=str(exc))
                tracer.count("utility.class_fallbacks")
                scores = scorer(pool, label)
            span.set(n_candidates=len(scores.candidates))
            tracer.count("utility.classes_scored")
        scores_by_class[label] = scores
    return scores_by_class


class IPS:
    """Shapelet discovery with the instance profile (the paper's method).

    Parameters
    ----------
    config:
        Pipeline tunables; see :class:`repro.core.config.IPSConfig`.
    """

    def __init__(self, config: IPSConfig | None = None) -> None:
        self.config = config or IPSConfig()
        self.pool_: CandidatePool | None = None
        self.pruned_pool_: CandidatePool | None = None
        self.dabf_: DABF | None = None
        self.prune_report_: PruneReport | None = None
        self.perf_counters_: PerfCounters | None = None
        self.kernel_cache_: SeriesCache | None = None
        #: Resolved kernel BackendSpec of the last run (set by discover).
        self.kernel_backend_ = None
        #: Trace of the last run (``None`` unless tracing was active).
        self.trace_ = None
        # A tracer pre-seeded by IPSClassifier so the validation span and
        # the discovery spans share one trace.
        self._pending_tracer = None

    def discover(self, dataset: Dataset) -> DiscoveryResult:
        """Run candidate generation, pruning, and top-k selection.

        With ``config.budget`` set, the run is *anytime*: the budget is
        checked between generation rounds and at phase boundaries. On
        exhaustion, generation truncates at a round boundary (every
        class equally covered), pruning is skipped, and selection runs
        on whatever pool exists — the result is valid but flagged
        ``completed=False``, with ``extra["budget"]`` recording per-phase
        progress. Truncation points are reproducible: candidate/memory
        budgets always cut at the same round for a fixed seed, and a
        deadline tight enough to expire within the first round cuts at
        the guaranteed one-round minimum.
        """
        config = self.config
        lengths = resolve_lengths(dataset.series_length, config.length_ratios)
        tracker = config.budget.start() if config.budget is not None else None
        tracer = self._pending_tracer
        self._pending_tracer = None
        if tracer is None:
            tracer = make_tracer(config.observability)
        self.trace_ = tracer if tracer.active else None
        backend = resolve_kernel_backend(config, dataset)
        self.kernel_backend_ = backend
        if tracer.active:
            tracer.manifest = run_manifest(config, dataset, kernel_backend=backend)
        counters = (
            PerfCounters()
            if config.observability != "off"
            else NULL_PERF_COUNTERS
        )
        self.perf_counters_ = counters
        # Run-wide series cache shared by the scoring and transform phases
        # (generation uses per-unit caches to bound memory — see
        # instanceprofile.candidates — but reports into the same counters).
        # The cache carries the resolved backend (so every batched kernel
        # downstream runs under it) and, when configured, the persistent
        # on-disk spectra store shared across runs.
        run_cache = (
            SeriesCache(
                counters=counters,
                backend=backend,
                store=config.spectra_cache_dir,
            )
            if config.kernel_cache
            else None
        )
        self.kernel_cache_ = run_cache

        with tracer.span(
            "discover",
            dataset=dataset.name,
            n_series=dataset.n_series,
            n_classes=dataset.n_classes,
            series_length=dataset.series_length,
            k=config.k,
            seed=config.seed,
        ):
            start = time.perf_counter()
            with tracer.span(
                "generation", q_n=config.q_n, q_s=config.q_s, lengths=lengths
            ) as gen_span, counters.phase("generation"):
                pool = generate_candidates(
                    dataset,
                    q_n=config.q_n,
                    q_s=config.q_s,
                    lengths=lengths,
                    motifs_per_profile=config.motifs_per_profile,
                    discords_per_profile=config.discords_per_profile,
                    normalized=config.normalized_profiles,
                    seed=config.seed,
                    budget_tracker=tracker,
                    perf_counters=counters,
                    tracer=tracer,
                )
                gen_span.set(n_candidates=len(pool))
                tracer.count("candidates.generated", len(pool))
            time_generation = time.perf_counter() - start
            self.pool_ = pool

            multi_class = dataset.n_classes > 1
            out_of_budget = tracker is not None and tracker.exhausted
            if out_of_budget:
                tracer.event(
                    "budget.exhausted",
                    phase="generation",
                    reason=tracker.check(),
                )
            start = time.perf_counter()
            dabf: DABF | None = None
            with tracer.span("pruning") as prune_span, counters.phase("pruning"):
                if out_of_budget:
                    # Pruning is an optimization, not a correctness stage:
                    # skip it to leave the remaining budget to selection.
                    pruned, report = pool.copy(), PruneReport()
                    prune_span.set(method="skipped(budget)")
                elif multi_class and config.use_dabf:
                    with tracer.span("dabf.build"):
                        dabf = DABF.build(
                            pool,
                            scheme=config.lsh_scheme,
                            n_projections=config.n_projections,
                            bins=config.bins,
                            seed=config.seed,
                        )
                    with tracer.span("dabf.prune", theta=config.theta):
                        pruned, report = dabf.prune(pool, theta=config.theta)
                    pruned = restore_emptied_classes(pool, pruned)
                    prune_span.set(method="dabf")
                elif multi_class:
                    pruner = NaivePruner(
                        pool,
                        theta=config.theta,
                        seed=config.seed,
                        series_cache=run_cache,
                    )
                    pruned, report = pruner.prune(pool)
                    pruned = restore_emptied_classes(pool, pruned)
                    prune_span.set(method="naive")
                else:
                    pruned, report = pool.copy(), PruneReport()
                    prune_span.set(method="single-class-passthrough")
                prune_span.set(
                    n_removed=report.n_removed, n_kept=len(pruned)
                )
                tracer.count("candidates.pruned", report.n_removed)
            time_pruning = time.perf_counter() - start
            self.pruned_pool_ = pruned
            self.prune_report_ = report
            if tracker is not None:
                tracker.record_phase("pruning", skipped=out_of_budget)
                was_exhausted = out_of_budget
                out_of_budget = tracker.exhausted
                if out_of_budget and not was_exhausted:
                    tracer.event(
                        "budget.exhausted",
                        phase="pruning",
                        reason=tracker.check(),
                    )

            start = time.perf_counter()
            use_dt = config.use_dt_cr and not out_of_budget
            if use_dt and dabf is None:
                # DT needs the bucket tables even when DABF pruning is off.
                with tracer.span("dabf.build", reason="dt-tables"):
                    dabf = DABF.build(
                        pool,
                        scheme=config.lsh_scheme,
                        n_projections=config.n_projections,
                        bins=config.bins,
                        seed=config.seed,
                    )
            self.dabf_ = dabf
            shared_cache = _PairDistanceCache(series_cache=run_cache)

            def _score(active_pool: CandidatePool, label: int) -> UtilityScores:
                if use_dt:
                    return score_candidates_dt(
                        dataset,
                        active_pool,
                        label,
                        dabf,
                        normalize=config.normalize_utility_sums,
                    )
                return score_candidates_brute(
                    dataset,
                    active_pool,
                    label,
                    use_cr=False,
                    normalize=config.normalize_utility_sums,
                    cache=shared_cache,
                    series_cache=(
                        run_cache
                        if run_cache is not None
                        else SeriesCache(counters=counters)
                    ),
                )

            with tracer.span("selection", dt_used=use_dt), counters.phase(
                "selection"
            ):
                scores_by_class = score_with_class_fallback(
                    _score, pruned, pool, range(dataset.n_classes), tracer=tracer
                )
                shapelets = select_top_k_per_class(scores_by_class, config.k)
            time_selection = time.perf_counter() - start

        extra = {
            "lengths": lengths,
            "prune_report": report,
            "scores_by_class": scores_by_class,
            "kernel_backend": backend.name,
        }
        if counters.enabled:
            perf = counters.snapshot()
            extra["perf"] = perf
            global_metrics().accumulate_perf(perf)
            global_metrics().counter(f"kernels.backend_runs.{backend.name}")
            if tracer.active:
                tracer.metrics.absorb_perf(perf)
                tracer.metrics.counter(
                    f"kernels.backend_runs.{backend.name}"
                )
        completed = True
        if tracker is not None:
            tracker.record_phase(
                "selection", classes_scored=len(scores_by_class), dt_used=use_dt
            )
            # "Completed" means every phase did its full work — a deadline
            # expiring after the last phase finished does not un-complete it.
            gen_truncated = tracker.progress.get("generation", {}).get(
                "truncated", False
            )
            completed = not (
                gen_truncated
                or tracker.progress.get("pruning", {}).get("skipped", False)
                or (config.use_dt_cr and not use_dt)
            )
            extra["budget"] = tracker.snapshot()
        if tracer.active:
            extra["trace"] = tracer
            if tracer.mode == "trace+jsonl":
                tracer.to_jsonl(config.obs_jsonl_path or DEFAULT_JSONL_PATH)
        return DiscoveryResult(
            shapelets=shapelets,
            n_candidates_generated=len(pool),
            n_candidates_after_pruning=len(pruned),
            time_candidate_generation=time_generation,
            time_pruning=time_pruning,
            time_selection=time_selection,
            completed=completed,
            extra=extra,
        )


class _Feature1NN(PredictorMixin):
    """1NN on the shapelet-feature space (one of the classic choices).

    Non-finite feature cells (a degenerate transform can emit them) are
    zeroed deterministically on both sides, so a NaN in one column can
    never poison every distance and flip ``argmin`` arbitrarily.
    """

    def __init__(self) -> None:
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self.classes_: np.ndarray | None = None

    @staticmethod
    def _sanitize(X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if np.isfinite(X).all():
            return X
        return np.where(np.isfinite(X), X, 0.0)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_Feature1NN":
        """Memorize the feature matrix."""
        self._X = self._sanitize(X)
        self._y = np.asarray(y, dtype=np.int64)
        self.classes_ = np.unique(self._y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Nearest-neighbour label per feature row."""
        if self._X is None:
            raise NotFittedError("call fit before predict")
        X = self._sanitize(X)
        out = np.empty(X.shape[0], dtype=np.int64)
        for i, row in enumerate(X):
            diffs = self._X - row
            out[i] = self._y[np.argmin(np.einsum("ij,ij->i", diffs, diffs))]
        return out


def _make_final_classifier(config: IPSConfig):
    """Instantiate the post-transform classifier chosen in the config."""
    if config.final_classifier == "svm":
        return OneVsRestSVM(C=config.svm_c, seed=config.seed)
    if config.final_classifier == "nb":
        return GaussianNB()
    if config.final_classifier == "tree":
        return DecisionTree(seed=config.seed)
    return _Feature1NN()


class IPSClassifier(ParamsMixin):
    """IPS discovery + shapelet transform + standardization + classifier.

    The final classifier defaults to the paper's linear SVM and can be
    switched via ``IPSConfig(final_classifier=...)``. The
    ``fit``/``predict``/``score`` interface takes raw ``(M, N)`` arrays
    with arbitrary integer labels (a :class:`Dataset` is also accepted by
    :meth:`fit_dataset`).
    """

    def __init__(self, config: IPSConfig | None = None) -> None:
        self.config = config or IPSConfig()
        self.discoverer_ = IPS(self.config)
        self.shapelets_: list[Shapelet] | None = None
        self.discovery_result_: DiscoveryResult | None = None
        self._transform: ShapeletTransform | None = None
        self._scaler: StandardScaler | None = None
        self._svm: OneVsRestSVM | None = None
        self._dataset: Dataset | None = None
        self._tracer = None

    def _validate(self, X, y, name: str = "", tracer=NULL_TRACER):
        """Route training input through the data contracts."""
        from repro.validation import validate_dataset

        with tracer.span("validation", mode=self.config.validation_mode) as span:
            validated = validate_dataset(
                X,
                y,
                mode=self.config.validation_mode,
                min_class_size=self.config.min_class_size,
                name=name,
            )
            report = validated.report
            span.set(
                n_findings=len(getattr(report, "findings", []) or []),
                n_repairs=len(getattr(report, "repairs", []) or []),
            )
            tracer.count(
                "validation.repairs",
                len(getattr(report, "repairs", []) or []),
            )
        return validated

    def _begin_trace(self):
        """One tracer per fit, shared by validation and discovery."""
        tracer = self._tracer
        if tracer is None:
            tracer = make_tracer(self.config.observability)
            self._tracer = tracer
        return tracer

    def fit_dataset(
        self, dataset: Dataset, _validation_report=None
    ) -> "IPSClassifier":
        """Fit on an already-constructed :class:`Dataset`.

        Unless ``config.validation_mode == "off"``, the dataset is first
        checked against the data contracts (:mod:`repro.validation`);
        the resulting report is attached to
        ``discovery_result_.extra["validation_report"]``.
        """
        tracer = self._begin_trace()
        validation_report = _validation_report
        if validation_report is None and self.config.validation_mode != "off":
            validated = self._validate(dataset, None, tracer=tracer)
            dataset = validated.dataset
            validation_report = validated.report
        try:
            self.discoverer_._pending_tracer = tracer
        except AttributeError:
            pass  # exotic drop-in discoverers may reject attribute writes
        result = self.discoverer_.discover(dataset)
        result.extra["validation_report"] = validation_report
        self.discovery_result_ = result
        self.shapelets_ = result.shapelets
        self._dataset = dataset
        # Share the discovery run's series cache with the transform, so
        # the training series' FFT spectra and window statistics computed
        # during utility scoring are reused here instead of redone.
        # getattr: drop-in discoverers (e.g. DistributedIPS) may not
        # expose the kernel-cache attributes.
        counters = getattr(self.discoverer_, "perf_counters_", None)
        counting = counters is not None and getattr(counters, "enabled", True)
        transform_cache = getattr(self.discoverer_, "kernel_cache_", None)
        if transform_cache is None and counters is not None:
            transform_cache = SeriesCache(counters=counters)
        self._transform = ShapeletTransform(
            result.shapelets, cache=transform_cache
        )
        with tracer.span("transform", n_shapelets=len(result.shapelets)):
            if counting:
                with counters.phase("transform"):
                    features = self._transform.transform(dataset.X)
                result.extra["perf"] = counters.snapshot()
            else:
                features = self._transform.transform(dataset.X)
        with tracer.span("classify", classifier=self.config.final_classifier):
            self._scaler = StandardScaler()
            scaled = self._scaler.fit_transform(features)
            self._svm = _make_final_classifier(self.config)
            self._svm.fit(scaled, dataset.y)
        if tracer.active:
            if counting:
                # Idempotent re-absorb so metrics include the transform
                # phase (replace semantics; span counters untouched).
                tracer.metrics.absorb_perf(counters.snapshot())
            if tracer.mode == "trace+jsonl":
                tracer.to_jsonl(
                    self.config.obs_jsonl_path or DEFAULT_JSONL_PATH
                )
        self._tracer = None
        return self

    def fit(self, X: np.ndarray, y: np.ndarray) -> "IPSClassifier":
        """Fit on raw arrays.

        In ``"repair"``/``"strict"`` validation modes the raw arrays are
        validated *before* :class:`Dataset` construction, so NaN gaps and
        ragged rows reach the repair policies instead of the
        constructor's blanket rejection.
        """
        if self.config.validation_mode == "off":
            return self.fit_dataset(Dataset(X=X, y=y))
        validated = self._validate(X, y, tracer=self._begin_trace())
        return self.fit_dataset(
            validated.dataset, _validation_report=validated.report
        )

    def _check_fitted(self) -> None:
        if self._svm is None or self._transform is None or self._scaler is None:
            raise NotFittedError("call fit before predict")

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Shapelet-transform features for ``X`` (unscaled)."""
        self._check_fitted()
        return self._transform.transform(X)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels (in the caller's original label values)."""
        self._check_fitted()
        features = self._scaler.transform(self._transform.transform(X))
        internal = self._svm.predict(features)
        return self._dataset.classes_[internal]

    @property
    def classes_(self) -> np.ndarray:
        """Original-valued class labels, sorted (Predictor contract)."""
        return self._fitted_classes()

    def _inner_scores(self, X: np.ndarray, method: str) -> np.ndarray:
        """Run the inner classifier's score surface on transformed features.

        The inner model is trained on internal labels ``0..C-1`` (the
        positions of :attr:`classes_`), and every final classifier sees
        all of them at fit time, so its columns already line up with the
        original class order — no re-indexing needed.
        """
        self._check_fitted()
        features = self._scaler.transform(self._transform.transform(X))
        scores = np.asarray(getattr(self._svm, method)(features), dtype=np.float64)
        if scores.shape[1] != self._fitted_classes().size:
            raise ValidationError(
                f"inner classifier produced {scores.shape[1]} columns for "
                f"{self._fitted_classes().size} classes"
            )
        return scores

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Per-class probabilities, ``(M, C)`` in :attr:`classes_` order."""
        return self._inner_scores(X, "predict_proba")

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Per-class decision values, ``(M, C)`` in :attr:`classes_` order."""
        return self._inner_scores(X, "decision_function")

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy against original-valued labels."""
        from repro.classify.metrics import accuracy_score

        y = np.asarray(y, dtype=np.int64)
        if not np.all(np.isin(np.unique(y), self._fitted_classes())):
            raise ValidationError("test labels contain classes unseen in training")
        return accuracy_score(y, self.predict(X))

    def _fitted_classes(self) -> np.ndarray:
        if self._dataset is None:
            raise NotFittedError("call fit before inspecting classes")
        return self._dataset.classes_
