"""Post-discovery shapelet analysis: match locations, coverage, quality.

The interpretability workflow of the paper's Fig. 13 needs more than the
shapelet values: *where* each shapelet matches each instance, how well it
separates the classes on its own, and whether the top-k as a set cover
the training instances. These functions compute exactly that from a
fitted shapelet set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.quality import best_information_gain
from repro.exceptions import ValidationError
from repro.kernels import distance_profile
from repro.ts.series import Dataset
from repro.types import Shapelet


@dataclass(frozen=True)
class ShapeletMatch:
    """Best match of one shapelet in one series."""

    position: int
    distance: float


def best_matches(shapelet: Shapelet, X: np.ndarray) -> list[ShapeletMatch]:
    """Best-match position and Def.-4 distance of a shapelet per series."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X.reshape(1, -1)
    if shapelet.length > X.shape[1]:
        raise ValidationError(
            f"shapelet of length {shapelet.length} longer than series "
            f"({X.shape[1]})"
        )
    matches = []
    for row in X:
        profile = distance_profile(shapelet.values, row)
        position = int(np.argmin(profile))
        matches.append(
            ShapeletMatch(
                position=position,
                distance=float(profile[position] / shapelet.length),
            )
        )
    return matches


def match_position_histogram(
    shapelet: Shapelet, X: np.ndarray, n_bins: int = 10
) -> np.ndarray:
    """Histogram of best-match positions (fractions of the series length).

    A localized class pattern gives a concentrated histogram; a shapelet
    matching noise matches anywhere (flat histogram).
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X.reshape(1, -1)
    matches = best_matches(shapelet, X)
    n_positions = X.shape[1] - shapelet.length + 1
    fractions = np.array(
        [m.position / max(n_positions - 1, 1) for m in matches]
    )
    histogram, _edges = np.histogram(fractions, bins=n_bins, range=(0.0, 1.0))
    return histogram


@dataclass(frozen=True)
class ShapeletQuality:
    """Standalone quality of one shapelet against a labelled dataset."""

    shapelet: Shapelet
    information_gain: float
    threshold: float
    mean_distance_own: float
    mean_distance_other: float

    @property
    def separation(self) -> float:
        """Other-class minus own-class mean distance (positive = good)."""
        return self.mean_distance_other - self.mean_distance_own


def shapelet_quality(shapelet: Shapelet, dataset: Dataset) -> ShapeletQuality:
    """Information gain and class-conditional distances of one shapelet.

    The shapelet's label refers to the dataset's *internal* class ids
    (as produced by discovery on the same dataset).
    """
    if not 0 <= shapelet.label < dataset.n_classes:
        raise ValidationError(
            f"shapelet label {shapelet.label} not a class of the dataset"
        )
    matches = best_matches(shapelet, dataset.X)
    distances = np.array([m.distance for m in matches])
    gain, threshold = best_information_gain(distances, dataset.y)
    own = dataset.y == shapelet.label
    return ShapeletQuality(
        shapelet=shapelet,
        information_gain=float(gain),
        threshold=float(threshold),
        mean_distance_own=float(distances[own].mean()),
        mean_distance_other=float(distances[~own].mean()) if np.any(~own) else float("nan"),
    )


def coverage_matrix(
    shapelets: list[Shapelet], dataset: Dataset
) -> np.ndarray:
    """Boolean ``(M, |S|)`` matrix: instance i is "covered" by shapelet j.

    Coverage follows the p-cover notion of BSPCOVER: shapelet j covers
    instance i when j's best information-gain threshold classifies i
    correctly (near side for j's own class, far side otherwise).
    """
    if not shapelets:
        raise ValidationError("need at least one shapelet")
    out = np.zeros((dataset.n_series, len(shapelets)), dtype=bool)
    for j, shapelet in enumerate(shapelets):
        quality = shapelet_quality(shapelet, dataset)
        distances = np.array(
            [m.distance for m in best_matches(shapelet, dataset.X)]
        )
        near = distances <= quality.threshold
        own = dataset.y == shapelet.label
        out[:, j] = near == own
    return out


def coverage_summary(
    shapelets: list[Shapelet], dataset: Dataset
) -> dict[str, float]:
    """Aggregate coverage statistics for a shapelet set.

    Returns ``covered_fraction`` (instances covered at least once),
    ``mean_multiplicity`` (average covers per instance) and
    ``uncovered`` (count of instances no shapelet classifies correctly).
    """
    matrix = coverage_matrix(shapelets, dataset)
    per_instance = matrix.sum(axis=1)
    return {
        "covered_fraction": float(np.mean(per_instance > 0)),
        "mean_multiplicity": float(per_instance.mean()),
        "uncovered": float(np.sum(per_instance == 0)),
    }
