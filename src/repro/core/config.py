"""Configuration of the IPS pipeline (parameter grid of Section IV-A)."""

from __future__ import annotations

import dataclasses
import difflib
import functools
from dataclasses import dataclass, field

from repro.core.budget import Budget
from repro.exceptions import ConfigError, ValidationError

#: Accepted values of ``IPSConfig.validation_mode``.
VALIDATION_MODES: tuple[str, ...] = ("strict", "repair", "off")

#: Accepted values of ``IPSConfig.observability`` (see ``repro.obs``).
OBSERVABILITY_MODES: tuple[str, ...] = ("off", "counters", "trace", "trace+jsonl")

#: The paper's candidate-length ratio grid.
DEFAULT_LENGTH_RATIOS: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5)


@dataclass(frozen=True)
class FaultToleranceConfig:
    """Fault-tolerance policy for distributed candidate generation.

    Attaching one of these to ``IPSConfig.fault_tolerance`` switches
    :class:`repro.distributed.DistributedIPS` from the fail-fast path
    (any worker exception aborts discovery) to the resilient path:
    per-unit retries with exponential backoff, a per-class success
    quorum, and optional checkpoint/resume. See ``docs/robustness.md``.

    Attributes
    ----------
    max_retries:
        Extra attempts per work unit after the first (0 = fail fast per
        unit, but still apply the quorum policy).
    base_delay, max_delay:
        Exponential-backoff schedule between retry rounds: round ``r``
        sleeps ``min(max_delay, base_delay * 2**(r-1))`` scaled by jitter.
        ``base_delay=0`` disables sleeping (useful in tests).
    jitter:
        Fractional jitter added to each backoff sleep, drawn from a
        seeded RNG so schedules are reproducible.
    unit_timeout:
        Wall-clock budget per unit in seconds; a unit exceeding it is
        treated as a retryable timeout failure. ``None`` disables the
        check.
    quorum:
        Minimum fraction of work units per class that must succeed for
        the merged pool to be trusted; below it discovery raises
        :class:`repro.exceptions.QuorumError`. ``1.0`` demands every
        unit.
    checkpoint_dir:
        Directory for the unit-result checkpoint store; completed units
        are persisted there and a re-run resumes instead of recomputing.
        ``None`` disables checkpointing.
    seed:
        Seed of the backoff-jitter RNG (falls back to the pipeline's
        master seed when ``None``). Never affects results, only sleeps.
    """

    max_retries: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.1
    unit_timeout: float | None = None
    quorum: float = 1.0
    checkpoint_dir: str | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValidationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValidationError("backoff delays must be >= 0")
        if self.max_delay < self.base_delay:
            raise ValidationError("max_delay must be >= base_delay")
        if self.jitter < 0:
            raise ValidationError(f"jitter must be >= 0, got {self.jitter}")
        if self.unit_timeout is not None and self.unit_timeout <= 0:
            raise ValidationError("unit_timeout must be > 0 when set")
        if not 0.0 < self.quorum <= 1.0:
            raise ValidationError(
                f"quorum must be in (0, 1], got {self.quorum}"
            )


@dataclass
class IPSConfig:
    """All tunables of the IPS pipeline.

    Defaults follow Section IV-A: shapelet number ``k = 5``, candidate
    length ratios {0.1..0.5}, ``Q_N`` from {10, 20, 50, 100} (default 20)
    and ``Q_S`` from {2, 3, 4, 5, 10} (default 3).

    Attributes
    ----------
    k:
        Number of shapelets selected per class.
    q_n, q_s:
        Bagging sample count / size for the instance profile.
    length_ratios:
        Candidate lengths as fractions of the series length.
    lsh_scheme:
        ``"l2"`` (paper default), ``"cosine"``, or ``"hamming"``
        (Table VII ablation).
    n_projections:
        Hash functions per LSH signature.
    theta:
        DABF 3-sigma-rule threshold.
    bins:
        Histogram bins for the DABF distribution fit.
    use_dabf:
        Toggle Algorithm-3 pruning (off = the Table V "without DABF" arm,
        which prunes with the naive quadratic method).
    use_dt_cr:
        Toggle the DT & CR optimizations (off = brute-force utilities, the
        Table V / Fig. 10(b) "without DT+CR" arm).
    normalized_profiles:
        Distance flavour inside the instance profile.
    motifs_per_profile, discords_per_profile:
        Harvest width of Algorithm 1.
    svm_c:
        Soft-margin penalty of the final linear SVM.
    final_classifier:
        Classifier applied to the shapelet-transformed features:
        ``"svm"`` (the paper's choice), ``"nb"`` (Gaussian naive Bayes),
        ``"tree"`` (CART), or ``"1nn"`` — the classic post-transform set
        of Lines et al. cited in Section I.
    normalize_utility_sums:
        Divide utility sums by their term count before the sigmoid
        (Defs. 11-13 apply the sigmoid to a raw sum, which saturates to 1.0
        in float64 once the sum exceeds ~40 and erases the ranking; the
        paper's formula is recovered with ``False``). See DESIGN.md.
    seed:
        Master seed; every stochastic stage derives from it.
    fault_tolerance:
        Optional :class:`FaultToleranceConfig` enabling retries, quorum
        merging, and checkpointing in the distributed pipeline; ``None``
        keeps the historical fail-fast behaviour.
    validation_mode:
        Data-contract handling on ``fit``: ``"repair"`` (default — apply
        deterministic repair policies and record them in
        ``DiscoveryResult.extra["validation_report"]``), ``"strict"``
        (raise :class:`~repro.exceptions.ValidationError` on any
        ERROR-severity finding), or ``"off"`` (legacy passthrough). See
        :mod:`repro.validation`.
    min_class_size:
        Classes with fewer training examples are flagged by validation
        (WARNING severity; discovery still runs).
    budget:
        Optional :class:`repro.core.budget.Budget`. When set, discovery
        becomes *anytime*: the budget is checked at round and phase
        boundaries, and on exhaustion a valid best-so-far result is
        returned with ``completed=False`` instead of running to the end.
    kernel_cache:
        Share one :class:`repro.kernels.SeriesCache` across the discovery
        phases (matrix profiles, utility scoring, shapelet transform), so
        each series' FFT spectrum and rolling statistics are computed once
        per run. Results are bit-identical either way — ``False`` only
        disables the reuse (the equivalence-testing and micro-benchmark
        arm). Perf counters are collected regardless and surface at
        ``DiscoveryResult.extra["perf"]``.
    kernel_backend:
        Execution strategy of the batched FFT kernels: a registered
        backend name (``"reference"``, ``"float32"``, ``"tiled"``,
        ``"sharded"`` — see :mod:`repro.kernels.backends`) or ``"auto"``
        (default), which lets :func:`repro.kernels.choose_backend` pick a
        bit-identical strategy from the training-set shape at
        ``SeriesCache`` build time. ``"float32"`` is the only choice that
        trades precision (tested error bound) and is never auto-selected.
        The resolved name is recorded in run manifests.
    kernel_tile_budget:
        Working-set budget in bytes for the ``tiled`` backend and the
        auto-tuner's fits-in-budget test. ``None`` uses
        ``repro.kernels.backends.DEFAULT_TILE_BUDGET`` (32 MiB).
    spectra_cache_dir:
        Optional directory of a persistent
        :class:`repro.kernels.SpectraStore`. When set, the run's
        ``SeriesCache`` consults/updates the on-disk spectrum cache, so
        repeated runs over the same data skip the forward FFTs
        (``spectra_disk_hits`` in the perf counters). Entries are
        content-addressed and checksummed; corruption is quarantined and
        recomputed, never served.
    observability:
        How much the run observes itself (:mod:`repro.obs`): ``"off"``
        (no counters, no trace — the no-op singletons ride the hot
        paths), ``"counters"`` (default: kernel perf counters only,
        overhead gated at <=2% by ``make verify-obs``), ``"trace"``
        (adds the span tree, metrics registry, and run manifest at
        ``DiscoveryResult.extra["trace"]``), or ``"trace+jsonl"``
        (additionally streams the trace to ``obs_jsonl_path``). Never
        affects numerical results.
    obs_jsonl_path:
        Destination of the ``"trace+jsonl"`` sink; ``None`` uses
        ``.repro-obs/last-run.jsonl`` (what ``repro obs report`` reads
        by default).
    streaming_margin_threshold:
        Decision-margin threshold of
        :class:`repro.streaming.EarlyClassifier`: once the classifier's
        :func:`repro.types.decision_margin` on the partial series clears
        it (and ``streaming_min_fraction`` is satisfied), the label is
        emitted early. ``0.0`` emits at the first eligible window.
    streaming_min_fraction:
        Fraction of the training series length that must have arrived
        before early emission is allowed — a guard against confident
        nonsense on the first few samples. ``1.0`` disables early
        emission entirely (decisions only at end of stream).
    streaming_chunk_size:
        Default chunk size of the chunked-replay driver
        (:func:`repro.datasets.iter_chunks`) and the ``repro stream``
        CLI.
    """

    k: int = 5
    q_n: int = 20
    q_s: int = 3
    length_ratios: tuple[float, ...] = DEFAULT_LENGTH_RATIOS
    lsh_scheme: str = "l2"
    n_projections: int = 8
    theta: float = 3.0
    bins: int = 16
    use_dabf: bool = True
    use_dt_cr: bool = True
    normalized_profiles: bool = True
    motifs_per_profile: int = 1
    discords_per_profile: int = 1
    svm_c: float = 1.0
    final_classifier: str = "svm"
    normalize_utility_sums: bool = True
    seed: int | None = 0
    fault_tolerance: FaultToleranceConfig | None = None
    validation_mode: str = "repair"
    min_class_size: int = 2
    budget: Budget | None = None
    kernel_cache: bool = True
    kernel_backend: str = "auto"
    kernel_tile_budget: int | None = None
    spectra_cache_dir: str | None = None
    observability: str = "counters"
    obs_jsonl_path: str | None = None
    streaming_margin_threshold: float = 1.0
    streaming_min_fraction: float = 0.3
    streaming_chunk_size: int = 32
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValidationError(f"k must be >= 1, got {self.k}")
        if self.q_n < 1 or self.q_s < 1:
            raise ValidationError("q_n and q_s must be >= 1")
        if not self.length_ratios:
            raise ValidationError("length_ratios must be non-empty")
        for ratio in self.length_ratios:
            if not 0.0 < ratio <= 1.0:
                raise ValidationError(f"length ratio {ratio} outside (0, 1]")
        if self.lsh_scheme not in ("l2", "cosine", "hamming"):
            raise ValidationError(f"unknown lsh_scheme {self.lsh_scheme!r}")
        if self.theta <= 0:
            raise ValidationError(f"theta must be > 0, got {self.theta}")
        if self.n_projections < 1:
            raise ValidationError("n_projections must be >= 1")
        if self.bins < 2:
            raise ValidationError("bins must be >= 2")
        if self.motifs_per_profile < 1 or self.discords_per_profile < 0:
            raise ValidationError("invalid per-profile harvest counts")
        if self.svm_c <= 0:
            raise ValidationError("svm_c must be > 0")
        if self.final_classifier not in ("svm", "nb", "tree", "1nn"):
            raise ValidationError(
                f"unknown final_classifier {self.final_classifier!r}"
            )
        if self.fault_tolerance is not None and not isinstance(
            self.fault_tolerance, FaultToleranceConfig
        ):
            raise ValidationError(
                "fault_tolerance must be a FaultToleranceConfig or None"
            )
        if self.validation_mode not in VALIDATION_MODES:
            raise ValidationError(
                f"unknown validation_mode {self.validation_mode!r}; "
                f"choose from {VALIDATION_MODES}"
            )
        if self.min_class_size < 1:
            raise ValidationError(
                f"min_class_size must be >= 1, got {self.min_class_size}"
            )
        if self.budget is not None and not isinstance(self.budget, Budget):
            raise ValidationError("budget must be a Budget or None")
        if self.observability not in OBSERVABILITY_MODES:
            raise ValidationError(
                f"unknown observability {self.observability!r}; "
                f"choose from {OBSERVABILITY_MODES}"
            )
        if self.kernel_backend != "auto":
            # Fail at construction, not mid-discovery, on unknown names.
            from repro.kernels.backends import get_backend

            get_backend(self.kernel_backend)
        if self.kernel_tile_budget is not None and self.kernel_tile_budget < (
            1 << 16
        ):
            raise ValidationError(
                "kernel_tile_budget must be >= 64 KiB when set, got "
                f"{self.kernel_tile_budget}"
            )
        if self.streaming_margin_threshold < 0:
            raise ValidationError(
                "streaming_margin_threshold must be >= 0, got "
                f"{self.streaming_margin_threshold}"
            )
        if not 0.0 <= self.streaming_min_fraction <= 1.0:
            raise ValidationError(
                "streaming_min_fraction must be in [0, 1], got "
                f"{self.streaming_min_fraction}"
            )
        if self.streaming_chunk_size < 1:
            raise ValidationError(
                "streaming_chunk_size must be >= 1, got "
                f"{self.streaming_chunk_size}"
            )

    @classmethod
    def from_dict(cls, data: dict) -> "IPSConfig":
        """Rebuild a config from its manifest form (``dataclasses.asdict``).

        Run manifests serialize the config as a plain dict (nested
        dataclasses become dicts, tuples become lists); this inverts
        that: ``fault_tolerance``/``budget`` dicts are reconstructed into
        their dataclasses and ``length_ratios`` is re-tupled, so
        ``IPSConfig.from_dict(asdict(config)) == config`` round-trips —
        including the ``streaming_*`` fields. Unknown keys raise
        :class:`~repro.exceptions.ConfigError` (strict, with a
        did-you-mean hint), never silently drop.
        """
        if not isinstance(data, dict):
            raise ConfigError(
                f"IPSConfig.from_dict expects a dict, got {type(data).__name__}"
            )
        kwargs = dict(data)
        value = kwargs.get("fault_tolerance")
        if isinstance(value, dict):
            kwargs["fault_tolerance"] = FaultToleranceConfig(**value)
        value = kwargs.get("budget")
        if isinstance(value, dict):
            kwargs["budget"] = Budget(**value)
        value = kwargs.get("length_ratios")
        if isinstance(value, list):
            kwargs["length_ratios"] = tuple(value)
        return cls(**kwargs)


#: Every field name IPSConfig accepts, for strict unknown-kwarg rejection.
_CONFIG_FIELDS: frozenset[str] = frozenset(
    f.name for f in dataclasses.fields(IPSConfig)
)

_generated_init = IPSConfig.__init__


@functools.wraps(_generated_init)
def _strict_init(self, *args, **kwargs) -> None:
    unknown = sorted(set(kwargs) - _CONFIG_FIELDS)
    if unknown:
        hints = []
        for name in unknown:
            close = difflib.get_close_matches(name, _CONFIG_FIELDS, n=1)
            hints.append(
                f"{name!r} (did you mean {close[0]!r}?)" if close else repr(name)
            )
        raise ConfigError(
            f"unknown IPSConfig field(s): {', '.join(hints)}"
        )
    _generated_init(self, *args, **kwargs)


# A mistyped field name historically raised a bare TypeError from the
# dataclass-generated __init__; manifests written by a newer version (or
# plain typos) now fail with a typed, suggestion-bearing ConfigError.
IPSConfig.__init__ = _strict_init
