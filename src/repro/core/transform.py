"""Shapelet transform (Def. 7): embed series as distances to shapelets."""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.kernels import SeriesCache, batch_min_distance, direct_min_distance
from repro.ts.dtw import dtw_distance
from repro.types import ParamsMixin, Shapelet

#: Accepted values of ``ShapeletTransform(engine=...)``.
ENGINES: tuple[str, ...] = ("fft", "direct")


class ShapeletTransform(ParamsMixin):
    """Transforms series into the shapelet-distance feature space.

    Given discovered shapelets ``S_1..S_m``, a series ``T_j`` becomes the
    vector ``(dist(T_j, S_1), ..., dist(T_j, S_m))`` under the paper's
    Def.-4 distance. Classic vector classifiers then run on the embedding
    (Lines et al., KDD 2012).

    Parameters
    ----------
    metric:
        ``"euclidean"`` (Def. 4, the paper's choice) or ``"dtw"`` — the
        elastic variant motivated by the DTW-motif line of work the paper
        cites (Alaee et al. [1]): each feature becomes the minimum banded
        DTW distance between the shapelet and the series' windows of the
        same length (O(M N L^2), so reserve it for small problems).
    dtw_band:
        Sakoe-Chiba half-width for the DTW metric.
    cache:
        Optional :class:`repro.kernels.SeriesCache`. Per-row window
        statistics and FFT spectra of ``X`` are hoisted through it, so
        they are computed once per series instead of once per shapelet —
        and, when the cache is shared with discovery, reused across the
        whole pipeline. Without one, each :meth:`transform` call uses a
        private cache (stats still computed once per call, not per
        shapelet).
    engine:
        Sliding-dot-product strategy of the Euclidean metric: ``"fft"``
        (default — the batched FFT kernels, unchanged historical bits)
        or ``"direct"`` — per-window BLAS dots via
        :func:`repro.kernels.direct_min_distance`, the batch anchor a
        chunk-fed :class:`repro.streaming.StreamingTransform` is
        bit-identical to. The two engines agree to FFT round-off
        (~1e-9 relative).
    """

    def __init__(
        self,
        shapelets: list[Shapelet] | None = None,
        metric: str = "euclidean",
        dtw_band: int | None = 5,
        cache: SeriesCache | None = None,
        engine: str = "fft",
    ) -> None:
        if metric not in ("euclidean", "dtw"):
            raise ValidationError(f"unknown metric {metric!r}")
        if engine not in ENGINES:
            raise ValidationError(
                f"unknown engine {engine!r}; choose from {ENGINES}"
            )
        self.metric = metric
        self.dtw_band = dtw_band
        self.cache = cache
        self.engine = engine
        self.shapelets_: list[Shapelet] | None = None
        if shapelets is not None:
            self.fit(shapelets)

    def fit(self, shapelets: list[Shapelet]) -> "ShapeletTransform":
        """Bind the transform to a set of shapelets."""
        if not shapelets:
            raise ValidationError("at least one shapelet is required")
        self.shapelets_ = list(shapelets)
        return self

    @property
    def n_features(self) -> int:
        """Dimensionality of the embedding (= number of shapelets)."""
        if self.shapelets_ is None:
            raise NotFittedError("call fit before n_features")
        return len(self.shapelets_)

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Embed every row of ``X``; returns ``(M, n_features)``."""
        if self.shapelets_ is None:
            raise NotFittedError("call fit before transform")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if self.metric == "euclidean":
            cache = self.cache if self.cache is not None else SeriesCache()
            queries = [s.values for s in self.shapelets_]
            if self.engine == "direct":
                return direct_min_distance(queries, X, cache=cache)
            return batch_min_distance(queries, X, cache=cache)
        return self._transform_dtw(X)

    def _transform_dtw(self, X: np.ndarray) -> np.ndarray:
        """Minimum banded-DTW distance of each shapelet over the windows."""
        out = np.empty((X.shape[0], len(self.shapelets_)))
        for i, shapelet in enumerate(self.shapelets_):
            length = shapelet.length
            if length > X.shape[1]:
                raise ValidationError(
                    f"shapelet {i} longer than the series ({length} > {X.shape[1]})"
                )
            for j in range(X.shape[0]):
                windows = np.lib.stride_tricks.sliding_window_view(X[j], length)
                # Stride by half the length: full enumeration under DTW is
                # O(N L^2); the band makes windows overlap-tolerant anyway.
                step = max(1, length // 2)
                best = min(
                    dtw_distance(shapelet.values, w, band=self.dtw_band)
                    for w in windows[::step]
                )
                out[j, i] = best**2 / length  # keep Def.-4 scaling
        return out
