"""The three utility functions (Defs. 11-13) and their optimizations.

A motif candidate of class C is scored from three perspectives:

* **intra-class** (Def. 11): total distance to the other motif candidates
  of C — small means the candidate represents its class;
* **inter-class** (Def. 12): total distance to the motifs *and discords*
  of every other class — large means it discriminates;
* **intra-instance** (Def. 13): total Def.-4 distance to the raw training
  instances of C — small means the instances of C actually contain it
  (this is what kills the Example-1 "discord in both classes" failure).

The combined score (Algorithm 4, line 6) is

    u = U_intra - U_inter + U_DC        (smaller is better)

Two computation paths exist:

* **brute force** — raw Def.-4 distances; the CR (computation reuse)
  optimization computes each unordered candidate pair once instead of
  twice and shares cross-class pairs between the per-class passes;
* **DT (distribution transformation)** — Formula 15 replaces each distance
  with the rank gap ``|B_i - B_j|`` of the two items' DABF buckets, turning
  the O(N^2) distance into an O(N) hash. Ranks are normalized to [0, 1]
  per bucket table so that gaps are comparable across candidate lengths
  (a deviation documented in DESIGN.md: the paper keeps raw ranks and is
  silent on multi-length comparability).

Numerical note: Defs. 11-13 apply a sigmoid to a *raw sum* of distances;
with hundreds of candidates that sum is far above the float64 sigmoid
saturation point and every candidate would score exactly 1.0. With
``normalize=True`` (the default) the sums are divided by their term count
first, preserving the intended ranking; ``normalize=False`` reproduces the
paper's literal formula.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.filters.dabf import DABF
from repro.instanceprofile.candidates import CandidatePool
from repro.kernels import SeriesCache, batch_min_distance, subsequence_distance
from repro.ts.series import Dataset
from repro.types import Candidate


def sigmoid_utility(total: float) -> float:
    """The paper's ``1 / (1 + e^{-total})`` wrapper (Formulas 12-14)."""
    if total >= 0:
        return 1.0 / (1.0 + np.exp(-total))
    e = np.exp(total)
    return float(e / (1.0 + e))


@dataclass
class UtilityScores:
    """Per-candidate utilities of one class's motif candidates."""

    candidates: list[Candidate]
    intra: np.ndarray
    inter: np.ndarray
    instance: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.candidates)
        for name in ("intra", "inter", "instance"):
            arr = np.asarray(getattr(self, name), dtype=np.float64)
            if arr.shape != (n,):
                raise ValidationError(f"{name} utilities must have shape ({n},)")
            setattr(self, name, arr)

    @property
    def combined(self) -> np.ndarray:
        """Algorithm 4, line 6: ``u = U_intra - U_inter + U_DC`` (min = best)."""
        return self.intra - self.inter + self.instance


class _PairDistanceCache:
    """Cross-call cache of Def.-4 distances between candidates (the CR idea).

    ``series_cache`` additionally routes each *miss* through the kernel
    engine's :class:`~repro.kernels.SeriesCache`: candidate ``values``
    arrays are stable objects for the pool's lifetime, so the id-keyed
    spectrum/statistics entries hit — the longer array of each pair gets
    one FFT total instead of one per partner it is compared against.
    """

    def __init__(self, series_cache: SeriesCache | None = None) -> None:
        self._store: dict[tuple[int, int], float] = {}
        self.series_cache = series_cache
        self.hits = 0
        self.misses = 0

    def distance(self, a: Candidate, b: Candidate) -> float:
        """Cached Def.-4 distance between two candidates."""
        key = (id(a), id(b)) if id(a) <= id(b) else (id(b), id(a))
        cached = self._store.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        value = subsequence_distance(a.values, b.values, cache=self.series_cache)
        self._store[key] = value
        return value


def _finalize(sums: np.ndarray, counts: int, normalize: bool) -> np.ndarray:
    """Apply optional count normalization, then the sigmoid, elementwise."""
    if normalize and counts > 0:
        sums = sums / counts
    return np.array([sigmoid_utility(total) for total in sums])


def score_candidates_brute(
    dataset: Dataset,
    pool: CandidatePool,
    label: int,
    use_cr: bool = True,
    normalize: bool = True,
    cache: _PairDistanceCache | None = None,
    series_cache: SeriesCache | None = None,
) -> UtilityScores:
    """Brute-force utilities for the motif candidates of one class.

    ``use_cr=False`` recomputes every ordered pair (the paper's "numerous
    repeated utility calculation" arm, used for the Table V timing
    comparison); ``use_cr=True`` computes each unordered pair once, and a
    shared ``cache`` additionally reuses cross-class pairs between the
    per-class passes. The intra-instance sums run through the batched
    kernel engine; ``series_cache`` shares the training series' FFT
    spectra and window statistics with the other pipeline phases.
    """
    motifs = pool.motifs(label)
    if not motifs:
        return UtilityScores(
            candidates=[], intra=np.empty(0), inter=np.empty(0), instance=np.empty(0)
        )
    others = pool.other_classes(label)
    instances = dataset.series_of_class(label)
    n = len(motifs)

    intra_sums = np.zeros(n)
    if use_cr:
        shared = (
            cache
            if cache is not None
            else _PairDistanceCache(series_cache=series_cache)
        )
        for i in range(n):
            for j in range(i + 1, n):
                d = shared.distance(motifs[i], motifs[j])
                intra_sums[i] += d
                intra_sums[j] += d
        inter_sums = np.zeros(n)
        for i in range(n):
            for other in others:
                inter_sums[i] += shared.distance(motifs[i], other)
    else:
        # Deliberately wasteful: both (i, j) and (j, i) are computed —
        # but the series cache still applies (candidate arrays are stable
        # objects, so each one is FFT'd once, not once per pairing).
        for i in range(n):
            for j in range(n):
                if i != j:
                    intra_sums[i] += subsequence_distance(
                        motifs[i].values, motifs[j].values, cache=series_cache
                    )
        inter_sums = np.zeros(n)
        for i in range(n):
            for other in others:
                inter_sums[i] += subsequence_distance(
                    motifs[i].values, other.values, cache=series_cache
                )

    # One batched kernel pass replaces the per-(candidate, instance)
    # Python loop; row-major accumulation keeps the historical summation
    # order, so the sums are bit-identical to the scalar path.
    instance_sums = np.zeros(n)
    if instances.shape[0]:
        per_pair = batch_min_distance(
            [c.values for c in motifs], instances, cache=series_cache
        )
        for row_distances in per_pair:
            instance_sums += row_distances

    return UtilityScores(
        candidates=motifs,
        intra=_finalize(intra_sums, max(n - 1, 1), normalize),
        inter=_finalize(inter_sums, max(len(others), 1), normalize),
        instance=_finalize(instance_sums, max(len(instances), 1), normalize),
    )


def _normalized_ranks(dabf: DABF, label: int, items: list[Candidate]) -> np.ndarray:
    """Bucket ranks of candidates through class ``label``'s tables, in [0, 1].

    Candidates are grouped by length so each group can use one batched
    table query; ranks are divided by the table's bucket count so gaps are
    comparable across lengths.
    """
    cdabf = dabf.per_class[label]
    ranks = np.empty(len(items))
    by_length: dict[int, list[int]] = {}
    for idx, cand in enumerate(items):
        by_length.setdefault(cand.length, []).append(idx)
    for length, idxs in by_length.items():
        rows = np.vstack([items[i].values for i in idxs])
        raw = cdabf.bucket_ranks_batch(rows).astype(np.float64)
        table_lengths = np.asarray(cdabf.lengths)
        nearest = int(table_lengths[np.argmin(np.abs(table_lengths - length))])
        n_buckets = cdabf._tables[nearest].table.n_buckets  # noqa: SLF001
        denom = max(float(n_buckets - 1), 1.0)
        ranks[idxs] = raw / denom
    return np.clip(ranks, 0.0, 1.0)


def _instance_window_ranks(
    dataset: Dataset, dabf: DABF, label: int, lengths: list[int]
) -> dict[int, list[np.ndarray]]:
    """Sorted normalized window ranks per (length, instance) for class C.

    Hashing every sliding window once and reusing it for every candidate is
    the CR idea applied to the intra-instance utility.
    """
    instances = dataset.series_of_class(label)
    cdabf = dabf.per_class[label]
    out: dict[int, list[np.ndarray]] = {}
    for length in lengths:
        table_lengths = np.asarray(cdabf.lengths)
        nearest = int(table_lengths[np.argmin(np.abs(table_lengths - length))])
        n_buckets = cdabf._tables[nearest].table.n_buckets  # noqa: SLF001
        denom = max(float(n_buckets - 1), 1.0)
        per_instance: list[np.ndarray] = []
        for row in instances:
            if length > row.size:
                per_instance.append(np.empty(0))
                continue
            windows = np.lib.stride_tricks.sliding_window_view(row, length)
            raw = cdabf.bucket_ranks_batch(np.ascontiguousarray(windows))
            per_instance.append(np.sort(np.clip(raw / denom, 0.0, 1.0)))
        out[length] = per_instance
    return out


def _min_gap(sorted_values: np.ndarray, x: float) -> float:
    """Minimum |x - v| over a sorted array (binary search)."""
    if sorted_values.size == 0:
        return 0.0
    pos = int(np.searchsorted(sorted_values, x))
    best = np.inf
    if pos < sorted_values.size:
        best = min(best, abs(sorted_values[pos] - x))
    if pos > 0:
        best = min(best, abs(sorted_values[pos - 1] - x))
    return float(best)


def score_candidates_dt(
    dataset: Dataset,
    pool: CandidatePool,
    label: int,
    dabf: DABF,
    normalize: bool = True,
) -> UtilityScores:
    """DT + CR utilities (Section III-E) for one class's motif candidates.

    Every distance is replaced by the normalized bucket-rank gap
    ``|B_i - B_j|`` (Formula 15/16); bucket ranks are computed once per
    item and reused across all three utilities (CR).
    """
    motifs = pool.motifs(label)
    if not motifs:
        return UtilityScores(
            candidates=[], intra=np.empty(0), inter=np.empty(0), instance=np.empty(0)
        )
    others = pool.other_classes(label)
    n = len(motifs)

    motif_ranks = _normalized_ranks(dabf, label, motifs)
    gap_matrix = np.abs(motif_ranks[:, None] - motif_ranks[None, :])
    intra_sums = gap_matrix.sum(axis=1)  # diagonal contributes zero

    if others:
        other_ranks = _normalized_ranks(dabf, label, others)
        inter_sums = np.abs(motif_ranks[:, None] - other_ranks[None, :]).sum(axis=1)
    else:
        inter_sums = np.zeros(n)

    lengths = sorted({cand.length for cand in motifs})
    window_ranks = _instance_window_ranks(dataset, dabf, label, lengths)
    n_instances = dataset.class_indices(label).size
    instance_sums = np.zeros(n)
    for i, candidate in enumerate(motifs):
        per_instance = window_ranks[candidate.length]
        instance_sums[i] = sum(
            _min_gap(sorted_ranks, motif_ranks[i]) for sorted_ranks in per_instance
        )

    return UtilityScores(
        candidates=motifs,
        intra=_finalize(intra_sums, max(n - 1, 1), normalize),
        inter=_finalize(inter_sums, max(len(others), 1), normalize),
        instance=_finalize(instance_sums, max(n_instances, 1), normalize),
    )
