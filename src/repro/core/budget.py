"""Anytime resource budgets for shapelet discovery.

A :class:`Budget` bounds a discovery run along three axes — wall-clock
seconds, generated candidates, and estimated candidate-pool memory. The
pipeline checks the budget at *deterministic* checkpoints (after each
full round of per-class generation units, and at phase boundaries), so:

* the run never aborts: on exhaustion it returns the best-so-far result
  flagged ``DiscoveryResult.completed=False`` with per-phase progress
  recorded;
* truncation happens only at round/phase granularity. A candidate or
  memory budget therefore truncates at an *identical* point on every
  run with the same seed; a wall-clock deadline tight enough to expire
  within the first round also truncates identically (at the guaranteed
  minimum of one full round), which is what the anytime tests pin down.

The first generation round is always completed regardless of the budget
— an anytime result must cover every class, and one round is the
smallest unit of work that does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.exceptions import ValidationError

#: Bytes per candidate value (float64) used by the memory estimate.
_BYTES_PER_VALUE = 8


@dataclass(frozen=True)
class Budget:
    """Resource ceiling for one discovery run.

    Attributes
    ----------
    max_seconds:
        Wall-clock deadline measured from :meth:`start`. ``None``
        disables the deadline.
    max_candidates:
        Ceiling on generated candidates; generation stops at the first
        round boundary at or above it. Deterministic for a fixed seed.
    max_memory_mb:
        Ceiling on the *estimated* candidate-pool memory (values only,
        float64). Deterministic for a fixed seed.
    """

    max_seconds: float | None = None
    max_candidates: int | None = None
    max_memory_mb: float | None = None

    def __post_init__(self) -> None:
        if self.max_seconds is not None and self.max_seconds < 0:
            raise ValidationError(
                f"max_seconds must be >= 0, got {self.max_seconds}"
            )
        if self.max_candidates is not None and self.max_candidates < 1:
            raise ValidationError(
                f"max_candidates must be >= 1, got {self.max_candidates}"
            )
        if self.max_memory_mb is not None and self.max_memory_mb <= 0:
            raise ValidationError(
                f"max_memory_mb must be > 0, got {self.max_memory_mb}"
            )

    @property
    def unbounded(self) -> bool:
        """True when no axis is constrained."""
        return (
            self.max_seconds is None
            and self.max_candidates is None
            and self.max_memory_mb is None
        )

    def start(self) -> "BudgetTracker":
        """Begin tracking a run against this budget."""
        return BudgetTracker(budget=self)


@dataclass
class BudgetTracker:
    """Mutable per-run state: spend so far and per-phase progress."""

    budget: Budget
    started_at: float = field(default_factory=time.monotonic)
    candidates: int = 0
    memory_bytes: int = 0
    exhausted_reason: str | None = None
    progress: dict = field(default_factory=dict)

    def charge(self, n_candidates: int, n_values: int = 0) -> None:
        """Account for generated candidates (and their value memory)."""
        self.candidates += int(n_candidates)
        self.memory_bytes += int(n_values) * _BYTES_PER_VALUE

    def elapsed(self) -> float:
        """Seconds since tracking started."""
        return time.monotonic() - self.started_at

    def check(self) -> str | None:
        """Return the exhaustion reason, latching the first one seen.

        Checked only at round/phase boundaries so truncation points are
        reproducible (see the module docstring).
        """
        if self.exhausted_reason is not None:
            return self.exhausted_reason
        budget = self.budget
        if (
            budget.max_candidates is not None
            and self.candidates >= budget.max_candidates
        ):
            self.exhausted_reason = (
                f"candidate budget reached ({self.candidates} >= "
                f"{budget.max_candidates})"
            )
        elif (
            budget.max_memory_mb is not None
            and self.memory_bytes >= budget.max_memory_mb * 1024 * 1024
        ):
            self.exhausted_reason = (
                f"memory budget reached ({self.memory_bytes / 2**20:.2f} MiB "
                f">= {budget.max_memory_mb} MiB)"
            )
        elif (
            budget.max_seconds is not None
            and self.elapsed() >= budget.max_seconds
        ):
            self.exhausted_reason = (
                f"deadline reached ({self.elapsed():.3f}s >= "
                f"{budget.max_seconds}s)"
            )
        return self.exhausted_reason

    @property
    def exhausted(self) -> bool:
        """True once any axis has run out (latched)."""
        return self.check() is not None

    def record_phase(self, phase: str, **info: object) -> None:
        """Record progress for one pipeline phase."""
        self.progress.setdefault(phase, {}).update(info)

    def snapshot(self) -> dict:
        """JSON-friendly summary for ``DiscoveryResult.extra['budget']``."""
        return {
            "max_seconds": self.budget.max_seconds,
            "max_candidates": self.budget.max_candidates,
            "max_memory_mb": self.budget.max_memory_mb,
            "elapsed_seconds": self.elapsed(),
            "candidates": self.candidates,
            "memory_bytes": self.memory_bytes,
            "exhausted": self.exhausted_reason,
            "progress": {k: dict(v) for k, v in self.progress.items()},
        }


def null_tracker() -> BudgetTracker:
    """A tracker over an unbounded budget (never exhausts)."""
    return Budget().start()
