"""Registry of every public estimator, for conformance enforcement.

The :class:`repro.types.Estimator` / :class:`repro.types.Transformer`
protocols state the *shape* of the contract; this module enumerates who
must honour it. The registry drives ``tests/test_estimators.py``, which
fits every entry on a small synthetic problem and asserts the behavioural
half of the contract: predicting before ``fit`` raises
:class:`~repro.exceptions.NotFittedError`, ``fit`` returns ``self``,
``predict`` emits one integer label per row, and ``get_params`` reflects
the constructor arguments.

Entries use deliberately small settings — the registry exists to check
conformance, not accuracy. New public estimators must be added here;
the conformance test cross-checks the registry against the package
namespaces so an estimator cannot be silently left out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

#: How an estimator is fitted in the conformance harness.
#:
#: - ``"features"`` — ``fit(X, y)`` on a 2-D feature matrix with integer
#:   labels; the ordinary classifier contract.
#: - ``"series"`` — ``fit(X, y)`` on raw ``(M, N)`` time series (shapelet
#:   and dictionary methods; typically slower, so kept tiny).
#: - ``"binary_pm1"`` — ``fit(X, y)`` with labels restricted to -1/+1
#:   (the low-level binary SVM).
#: - ``"unsupervised"`` — ``fit(X)`` without labels (clustering).
#: - ``"transform"`` — transformer contract: ``fit(X)`` then
#:   ``transform(X)``; no ``predict``.
#: - ``"shapelets"`` — :class:`repro.core.transform.ShapeletTransform`:
#:   fitted with a shapelet list, transforms raw series.
FIT_STYLES = (
    "features",
    "series",
    "binary_pm1",
    "unsupervised",
    "transform",
    "shapelets",
)


@dataclass(frozen=True)
class EstimatorSpec:
    """One registry entry: a public estimator and how to exercise it."""

    name: str
    factory: Callable[[], object]
    fit_style: str

    def __post_init__(self) -> None:
        if self.fit_style not in FIT_STYLES:
            raise ValueError(
                f"unknown fit_style {self.fit_style!r} for {self.name}"
            )

    def make(self) -> object:
        """A fresh, unfitted instance."""
        return self.factory()


def _feature_specs() -> list[EstimatorSpec]:
    from repro.classify.logistic import LogisticRegression
    from repro.classify.naive_bayes import GaussianNB
    from repro.classify.neighbors import OneNearestNeighbor
    from repro.classify.rotation_forest import RotationForest
    from repro.classify.svm import LinearSVM, OneVsRestSVM
    from repro.classify.tree import DecisionTree

    return [
        EstimatorSpec("GaussianNB", GaussianNB, "features"),
        EstimatorSpec(
            "LogisticRegression",
            lambda: LogisticRegression(max_epochs=50),
            "features",
        ),
        EstimatorSpec(
            "DecisionTree", lambda: DecisionTree(max_depth=3), "features"
        ),
        EstimatorSpec(
            "OneVsRestSVM", lambda: OneVsRestSVM(max_epochs=50), "features"
        ),
        EstimatorSpec("OneNearestNeighbor", OneNearestNeighbor, "features"),
        EstimatorSpec(
            "RotationForest",
            lambda: RotationForest(n_estimators=3, group_size=2),
            "features",
        ),
        EstimatorSpec(
            "LinearSVM", lambda: LinearSVM(max_epochs=50), "binary_pm1"
        ),
    ]


def _series_specs() -> list[EstimatorSpec]:
    from repro.baselines.bag_of_patterns import BagOfPatterns
    from repro.baselines.boss import BOSS
    from repro.baselines.bspcover import BSPCover
    from repro.baselines.elis import ELIS
    from repro.baselines.fast_shapelets import FastShapelets
    from repro.baselines.interval_forest import TimeSeriesForest
    from repro.baselines.learning_shapelets import LearningShapelets
    from repro.baselines.mp_base import MPBaseline
    from repro.baselines.scalable_discovery import ScalableDiscovery
    from repro.baselines.shapelet_transform_st import ShapeletTransformST
    from repro.core.config import IPSConfig
    from repro.core.pipeline import IPSClassifier

    fast_ips = IPSConfig(
        k=2, q_n=2, q_s=2, length_ratios=(0.2, 0.3), seed=0
    )
    return [
        EstimatorSpec(
            "IPSClassifier", lambda: IPSClassifier(fast_ips), "series"
        ),
        EstimatorSpec("MPBaseline", lambda: MPBaseline(k=2), "series"),
        EstimatorSpec(
            "FastShapelets",
            lambda: FastShapelets(k=2, n_masking_rounds=2, refine_top=3),
            "series",
        ),
        EstimatorSpec("BSPCover", lambda: BSPCover(k=2), "series"),
        EstimatorSpec(
            "ShapeletTransformST", lambda: ShapeletTransformST(k=2), "series"
        ),
        EstimatorSpec(
            "ScalableDiscovery",
            lambda: ScalableDiscovery(k=2, n_clusters=3, samples_per_class=8),
            "series",
        ),
        EstimatorSpec(
            "LearningShapelets",
            lambda: LearningShapelets(k_per_class=1, epochs=20),
            "series",
        ),
        EstimatorSpec(
            "ELIS", lambda: ELIS(k_per_class=1, epochs=20), "series"
        ),
        EstimatorSpec(
            "TimeSeriesForest",
            lambda: TimeSeriesForest(n_estimators=3),
            "series",
        ),
        EstimatorSpec("BagOfPatterns", BagOfPatterns, "series"),
        EstimatorSpec("BOSS", BOSS, "series"),
    ]


def _transform_specs() -> list[EstimatorSpec]:
    from repro.classify.kmeans import KMeans
    from repro.classify.pca import PCA
    from repro.classify.scaler import StandardScaler
    from repro.core.transform import ShapeletTransform

    return [
        EstimatorSpec("StandardScaler", StandardScaler, "transform"),
        EstimatorSpec("PCA", lambda: PCA(n_components=2), "transform"),
        EstimatorSpec(
            "ShapeletTransform", ShapeletTransform, "shapelets"
        ),
        EstimatorSpec(
            "KMeans", lambda: KMeans(n_clusters=2, seed=0), "unsupervised"
        ),
    ]


def estimator_registry() -> list[EstimatorSpec]:
    """Every public estimator/transformer, with conformance-scale settings."""
    return _feature_specs() + _series_specs() + _transform_specs()


def registry_names() -> list[str]:
    """Names of all registered estimators, in registry order."""
    return [spec.name for spec in estimator_registry()]
