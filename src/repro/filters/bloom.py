"""Classic Bloom filter (Bloom 1970), used by the BSPCOVER baseline.

Hashing is ``blake2b`` with per-function salts, so behaviour is fully
deterministic across processes (unlike Python's builtin ``hash``, which is
randomized per interpreter run).
"""

from __future__ import annotations

import hashlib
import math

import numpy as np

from repro.exceptions import ValidationError


def _to_bytes(item: object) -> bytes:
    """Canonical byte encoding for supported key types."""
    if isinstance(item, bytes):
        return item
    if isinstance(item, str):
        return item.encode("utf-8")
    if isinstance(item, (int, float, np.integer, np.floating)):
        return repr(float(item) if isinstance(item, (float, np.floating)) else int(item)).encode("ascii")
    if isinstance(item, tuple):
        return b"(" + b",".join(_to_bytes(part) for part in item) + b")"
    if isinstance(item, np.ndarray):
        return item.tobytes()
    raise ValidationError(f"unsupported Bloom filter key type: {type(item).__name__}")


class BloomFilter:
    """Space-efficient approximate membership filter.

    Parameters
    ----------
    n_bits:
        Size of the bit array ``m``.
    n_hashes:
        Number of hash functions ``k``.
    """

    def __init__(self, n_bits: int, n_hashes: int = 4) -> None:
        if n_bits < 1:
            raise ValidationError(f"n_bits must be >= 1, got {n_bits}")
        if n_hashes < 1:
            raise ValidationError(f"n_hashes must be >= 1, got {n_hashes}")
        self.n_bits = int(n_bits)
        self.n_hashes = int(n_hashes)
        self._bits = np.zeros(self.n_bits, dtype=bool)
        self._n_items = 0

    @classmethod
    def with_capacity(cls, n_items: int, fp_rate: float = 0.01) -> "BloomFilter":
        """Size the filter for ``n_items`` at the target false-positive rate.

        Uses the textbook optima ``m = -n ln p / (ln 2)^2`` and
        ``k = (m / n) ln 2``.
        """
        if n_items < 1:
            raise ValidationError(f"n_items must be >= 1, got {n_items}")
        if not 0.0 < fp_rate < 1.0:
            raise ValidationError(f"fp_rate must be in (0, 1), got {fp_rate}")
        n_bits = max(8, int(math.ceil(-n_items * math.log(fp_rate) / math.log(2) ** 2)))
        n_hashes = max(1, int(round(n_bits / n_items * math.log(2))))
        return cls(n_bits=n_bits, n_hashes=n_hashes)

    def _positions(self, item: object) -> np.ndarray:
        data = _to_bytes(item)
        positions = np.empty(self.n_hashes, dtype=np.int64)
        for i in range(self.n_hashes):
            digest = hashlib.blake2b(
                data, digest_size=8, salt=i.to_bytes(4, "little") + b"repr"
            ).digest()
            positions[i] = int.from_bytes(digest, "little") % self.n_bits
        return positions

    def add(self, item: object) -> None:
        """Insert an item."""
        self._bits[self._positions(item)] = True
        self._n_items += 1

    def __contains__(self, item: object) -> bool:
        return bool(np.all(self._bits[self._positions(item)]))

    def __len__(self) -> int:
        return self._n_items

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set."""
        return float(self._bits.mean())

    def estimated_fp_rate(self) -> float:
        """Current expected false-positive probability ``(fill)^k``."""
        return float(self.fill_ratio**self.n_hashes)
