"""Best-fit distribution selection under NMSE (Table III of the paper).

Algorithm 2 z-normalizes the bucket-center distances and fits a parametric
distribution to their histogram. The paper reports the best fit among
common families under the normalized mean squared error

    NMSE = sum_i (h_i - p_i)^2 / sum_i h_i^2

between the density histogram ``h`` and the fitted pdf ``p`` evaluated at
the bin centers. Table III finds the normal distribution wins on 9 of 10
datasets; the candidate set here matches that experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.exceptions import ValidationError

#: Families considered by the fit, as (name, scipy distribution) pairs.
CANDIDATE_FAMILIES: tuple[tuple[str, stats.rv_continuous], ...] = (
    ("norm", stats.norm),
    ("gamma", stats.gamma),
    ("lognorm", stats.lognorm),
    ("expon", stats.expon),
    ("uniform", stats.uniform),
)


@dataclass(frozen=True)
class DistributionFit:
    """Outcome of fitting one family to a sample."""

    name: str
    params: tuple[float, ...]
    nmse: float

    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Fitted probability density evaluated at ``x``."""
        dist = dict(CANDIDATE_FAMILIES)[self.name]
        return dist.pdf(x, *self.params)

    def mean_std(self) -> tuple[float, float]:
        """Mean and standard deviation of the fitted distribution."""
        dist = dict(CANDIDATE_FAMILIES)[self.name]
        mean, var = dist.stats(*self.params, moments="mv")
        return float(mean), float(np.sqrt(var))


def nmse(histogram: np.ndarray, fitted: np.ndarray) -> float:
    """Normalized mean squared error between histogram and fitted densities."""
    histogram = np.asarray(histogram, dtype=np.float64)
    fitted = np.asarray(fitted, dtype=np.float64)
    if histogram.shape != fitted.shape:
        raise ValidationError("histogram/fit shape mismatch")
    denom = float(np.sum(histogram * histogram))
    if denom <= 0.0:
        return float("inf")
    return float(np.sum((histogram - fitted) ** 2) / denom)


def fit_best_distribution(
    values: np.ndarray,
    bins: int = 16,
    families: tuple[tuple[str, stats.rv_continuous], ...] = CANDIDATE_FAMILIES,
) -> tuple[DistributionFit, list[DistributionFit]]:
    """Fit each candidate family; return the NMSE winner and all results.

    Parameters
    ----------
    values:
        The (z-normalized) sample to fit. Must contain at least 2 distinct
        values; a degenerate sample gets a zero-width normal fit.
    bins:
        Histogram bin count (the paper's ``|B|`` segments).
    families:
        ``(name, scipy_distribution)`` pairs to try.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise ValidationError("cannot fit a distribution to an empty sample")
    if np.ptp(values) == 0.0:
        fit = DistributionFit(name="norm", params=(float(values[0]), 0.0), nmse=0.0)
        return fit, [fit]
    histogram, edges = np.histogram(values, bins=bins, density=True)
    centers = 0.5 * (edges[:-1] + edges[1:])
    results: list[DistributionFit] = []
    for name, dist in families:
        try:
            # Narrow, justified suppression: scipy's MLE fitters probe bad
            # parameter regions internally. The output IS checked — any
            # non-finite pdf disqualifies the family just below.
            with np.errstate(all="ignore"):
                params = dist.fit(values)
                fitted = dist.pdf(centers, *params)
            if not np.all(np.isfinite(fitted)):
                continue
            results.append(
                DistributionFit(
                    name=name,
                    params=tuple(float(p) for p in params),
                    nmse=nmse(histogram, fitted),
                )
            )
        except (ValueError, RuntimeError, FloatingPointError):
            continue
    if not results:
        raise ValidationError("no candidate distribution could be fitted")
    results.sort(key=lambda fit: fit.nmse)
    return results[0], results
