"""Distribution-aware bloom filter (DABF) — Algorithms 2 and 3 of the paper.

A DABF answers "is this query close to *most elements* of the set?" in
O(N):

1. **Construction (Algorithm 2).** Per class: hash every candidate into an
   LSH bucket table; rank buckets by center-to-origin distance;
   z-normalize the member distances; fit the best distribution to their
   histogram (Table III shows this is almost always normal).
2. **Query / pruning (Algorithm 3).** For a candidate ``e`` of class C,
   compute ``dist(LSH_Cbar(e), 0)`` in every *other* class's table,
   z-normalize by that class's distribution, and apply the 3-sigma rule:
   if the candidate lands within ``mu +- 3 sigma`` of any other class's
   distribution, it is "possibly close to most elements" of that class —
   i.e. it does not discriminate — and is removed.

Candidates come in several lengths (the ratio grid of Section IV-A), while
an LSH family has a fixed input dimension; the DABF therefore keeps one
bucket table per (class, length) and routes queries by length, resampling
to the nearest table when an exact-length table is missing (see DESIGN.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.filters.distribution import DistributionFit, fit_best_distribution
from repro.instanceprofile.candidates import CandidatePool
from repro.lsh.base import make_lsh
from repro.lsh.table import LSHTable
from repro.kernels import subsequence_distance
from repro.ts.preprocessing import FLAT_STD, linear_interpolate_resample, znormalize
from repro.types import Candidate

#: Default 3-sigma threshold (Chebyshev: at least 88.89% of any distribution).
DEFAULT_THETA = 3.0


@dataclass
class _LengthTable:
    """One per-length bucket table plus its normalization statistics."""

    table: LSHTable
    mean: float
    std: float

    def zscore(self, values: np.ndarray) -> float:
        """Z-normalized distance-to-origin of a query in this table."""
        norm = self.table.query_norm(values)
        if self.std < FLAT_STD:
            return 0.0 if abs(norm - self.mean) < FLAT_STD else float("inf")
        return (norm - self.mean) / self.std


class ClassDABF:
    """The per-class half of a DABF: ``(LSH_C, Distribution_C)``."""

    def __init__(
        self,
        label: int,
        scheme: str = "l2",
        n_projections: int = 8,
        bins: int = 16,
        znorm_inputs: bool = False,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.label = label
        self.scheme = scheme
        self.n_projections = n_projections
        self.bins = bins
        #: z-normalize subsequences before hashing. Raw hashing (default)
        #: keeps amplitude information and prunes more aggressively;
        #: z-normalized hashing makes the codomain distribution close to
        #: normal (the Table III experiment uses this flavour).
        self.znorm_inputs = znorm_inputs
        self._rng = (
            seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        )
        self._tables: dict[int, _LengthTable] = {}
        self.distribution: DistributionFit | None = None
        self.all_fits: list[DistributionFit] = []

    def _prepare(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        return znormalize(values) if self.znorm_inputs else values

    @property
    def lengths(self) -> list[int]:
        """Candidate lengths this class has tables for."""
        return sorted(self._tables)

    def build(self, candidates: list[Candidate]) -> None:
        """Algorithm 2 for one class: bucket, rank, normalize, fit."""
        if not candidates:
            raise ValidationError(f"class {self.label} has no candidates")
        by_length: dict[int, list[Candidate]] = {}
        for cand in candidates:
            by_length.setdefault(cand.length, []).append(cand)
        pooled_zscores: list[np.ndarray] = []
        for length, group in sorted(by_length.items()):
            family = make_lsh(
                self.scheme, dim=length, n_projections=self.n_projections, seed=self._rng
            )
            table = LSHTable(family)
            for idx, cand in enumerate(group):
                table.add(self._prepare(cand.values), item_id=idx)
            norms = table.member_norms()
            mean = float(norms.mean())
            std = float(norms.std())
            self._tables[length] = _LengthTable(table=table, mean=mean, std=std)
            if std >= FLAT_STD:
                pooled_zscores.append((norms - mean) / std)
            else:
                pooled_zscores.append(np.zeros_like(norms))
        pooled = np.concatenate(pooled_zscores)
        self.distribution, self.all_fits = fit_best_distribution(pooled, bins=self.bins)

    def _route(self, values: np.ndarray) -> tuple[_LengthTable, np.ndarray]:
        """Pick the table for this query length, resampling if needed."""
        if not self._tables:
            raise ValidationError(f"class {self.label} DABF is empty")
        values = self._prepare(values)
        length = values.size
        if length in self._tables:
            return self._tables[length], values
        available = np.asarray(self.lengths)
        nearest = int(available[np.argmin(np.abs(available - length))])
        return self._tables[nearest], linear_interpolate_resample(values, nearest)

    def query_zscore(self, values: np.ndarray) -> float:
        """Z-normalized ``dist(LSH_C(query), 0)`` (Algorithm 3, line 4)."""
        table, routed = self._route(values)
        return table.zscore(routed)

    def is_close_to_most(self, values: np.ndarray, theta: float = DEFAULT_THETA) -> bool:
        """3-sigma-rule membership test.

        True = "possibly close to most elements" of this class;
        False = "definitely not close to most elements".
        """
        return abs(self.query_zscore(values)) <= theta

    def bucket_rank(self, values: np.ndarray) -> int:
        """Ranked-bucket index of a query (the ``B_i`` of Formula 15)."""
        table, routed = self._route(values)
        return table.table.bucket_rank_of(routed)

    def bucket_ranks_batch(self, rows: np.ndarray) -> np.ndarray:
        """Ranked-bucket indices for many equal-length queries at once.

        All rows are routed through the table for their common length
        (resampled to the nearest available length when needed). This is
        the workhorse of the DT optimization: candidate-to-candidate and
        candidate-to-window distances collapse to ``|B_i - B_j|`` over
        these ranks (Formula 15).
        """
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2:
            raise ValidationError("bucket_ranks_batch expects a 2-D matrix")
        if self.znorm_inputs:
            rows = znormalize(rows, axis=1)
        length = rows.shape[1]
        if length in self._tables:
            return self._tables[length].table.bucket_ranks_batch(rows)
        available = np.asarray(self.lengths)
        nearest = int(available[np.argmin(np.abs(available - length))])
        resampled = np.vstack(
            [linear_interpolate_resample(row, nearest) for row in rows]
        )
        return self._tables[nearest].table.bucket_ranks_batch(resampled)

    def n_items(self) -> int:
        """Total candidates hashed into this class's tables."""
        return sum(lt.table.n_items for lt in self._tables.values())


@dataclass
class PruneReport:
    """Statistics of one Algorithm-3 pruning pass."""

    removed_per_class: dict[int, int] = field(default_factory=dict)
    kept_per_class: dict[int, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def n_removed(self) -> int:
        """Total candidates removed."""
        return sum(self.removed_per_class.values())

    @property
    def n_kept(self) -> int:
        """Total candidates kept."""
        return sum(self.kept_per_class.values())


class DABF:
    """The full distribution-aware bloom filter over all classes."""

    def __init__(self, per_class: dict[int, ClassDABF]) -> None:
        if not per_class:
            raise ValidationError("DABF requires at least one class")
        self.per_class = per_class

    @classmethod
    def build(
        cls,
        pool: CandidatePool,
        scheme: str = "l2",
        n_projections: int = 8,
        bins: int = 16,
        znorm_inputs: bool = False,
        seed: int | np.random.Generator | None = None,
    ) -> "DABF":
        """Algorithm 2: construct one :class:`ClassDABF` per class."""
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        per_class: dict[int, ClassDABF] = {}
        for label in pool.classes:
            cdabf = ClassDABF(
                label=label,
                scheme=scheme,
                n_projections=n_projections,
                bins=bins,
                znorm_inputs=znorm_inputs,
                seed=rng,
            )
            cdabf.build(pool.all_of_class(label))
            per_class[label] = cdabf
        return cls(per_class)

    @property
    def classes(self) -> list[int]:
        """Class labels covered."""
        return sorted(self.per_class)

    def fits(self) -> dict[int, DistributionFit]:
        """Best distribution fit per class (feeds the Table III bench)."""
        return {
            label: cdabf.distribution
            for label, cdabf in self.per_class.items()
            if cdabf.distribution is not None
        }

    def should_prune(
        self, candidate: Candidate, theta: float = DEFAULT_THETA
    ) -> bool:
        """Algorithm 3, line 4: close to most elements of ANY other class?"""
        return any(
            self.per_class[other].is_close_to_most(candidate.values, theta)
            for other in self.classes
            if other != candidate.label
        )

    def prune(
        self, pool: CandidatePool, theta: float = DEFAULT_THETA
    ) -> tuple[CandidatePool, PruneReport]:
        """Algorithm 3: remove candidates close to most elements elsewhere.

        Works on a copy; the input pool is untouched. Single-class pools
        pass through unchanged (there is no "other class" to collide with).
        """
        start = time.perf_counter()
        pruned = pool.copy()
        report = PruneReport()
        for label in pool.classes:
            removed = 0
            for candidate in pool.all_of_class(label):
                if self.should_prune(candidate, theta):
                    pruned.remove(candidate)
                    removed += 1
            report.removed_per_class[label] = removed
            report.kept_per_class[label] = len(pool.all_of_class(label)) - removed
        report.elapsed_seconds = time.perf_counter() - start
        return pruned, report

    def bucket_rank(self, label: int, values: np.ndarray) -> int:
        """Ranked-bucket index of ``values`` in class ``label``'s table."""
        if label not in self.per_class:
            raise ValidationError(f"no DABF for class {label}")
        return self.per_class[label].bucket_rank(values)


class NaivePruner:
    """The quadratic reference method Algorithm 3 is compared against.

    "Close to most elements" is answered on raw distances: compute the
    Def.-4 distance from the query to every element of the other class and
    compare the query's *mean* distance against the class's own pairwise
    distance distribution — the query is close to most elements when its
    mean distance lies within ``theta`` standard deviations of the class's
    internal mean (the same 3-sigma-rule semantics the DABF evaluates on
    hashed statistics, but at O(|Phi| N log N) per query instead of O(N) —
    the gap measured by Table V and Fig. 10(a)).

    Parameters
    ----------
    max_reference_pairs:
        Cap on sampled pairs when estimating each class's internal distance
        distribution (construction cost control only).
    series_cache:
        Optional :class:`~repro.kernels.SeriesCache`. Candidate ``values``
        arrays are stable objects for the pool's lifetime, so routing the
        quadratic distance loops through the cache gives each candidate
        one FFT/statistics pass total instead of one per comparison —
        results are bit-identical either way.
    """

    def __init__(
        self,
        pool: CandidatePool,
        theta: float = DEFAULT_THETA,
        max_reference_pairs: int = 256,
        seed: int | np.random.Generator | None = None,
        series_cache=None,
    ) -> None:
        self.theta = theta
        self.pool = pool
        self.series_cache = series_cache
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        self._stats: dict[int, tuple[float, float]] = {}
        for label in pool.classes:
            elements = pool.all_of_class(label)
            if len(elements) < 2:
                self._stats[label] = (float("inf"), 0.0)
                continue
            n_pairs = min(max_reference_pairs, len(elements) * (len(elements) - 1) // 2)
            dists = np.empty(n_pairs)
            for p in range(n_pairs):
                i, j = rng.choice(len(elements), size=2, replace=False)
                dists[p] = subsequence_distance(
                    elements[i].values,
                    elements[j].values,
                    cache=series_cache,
                )
            self._stats[label] = (float(dists.mean()), float(dists.std()))

    def is_close_to_most(self, values: np.ndarray, label: int) -> bool:
        """Mean-distance 3-sigma test against class ``label``'s elements."""
        elements = self.pool.all_of_class(label)
        if not elements:
            return False
        mean_internal, std_internal = self._stats[label]
        if not np.isfinite(mean_internal):
            return False
        mean_query = float(
            np.mean(
                [
                    subsequence_distance(
                        values, element.values, cache=self.series_cache
                    )
                    for element in elements
                ]
            )
        )
        spread = max(std_internal, FLAT_STD)
        return mean_query <= mean_internal + self.theta * spread

    def should_prune(self, candidate: Candidate) -> bool:
        """Same decision contract as :meth:`DABF.should_prune`."""
        return any(
            self.is_close_to_most(candidate.values, other)
            for other in self.pool.classes
            if other != candidate.label
        )

    def prune(self, pool: CandidatePool) -> tuple[CandidatePool, PruneReport]:
        """Full naive pruning pass (for timing comparisons)."""
        start = time.perf_counter()
        pruned = pool.copy()
        report = PruneReport()
        for label in pool.classes:
            removed = 0
            for candidate in pool.all_of_class(label):
                if self.should_prune(candidate):
                    pruned.remove(candidate)
                    removed += 1
            report.removed_per_class[label] = removed
            report.kept_per_class[label] = len(pool.all_of_class(label)) - removed
        report.elapsed_seconds = time.perf_counter() - start
        return pruned, report
