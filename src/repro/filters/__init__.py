"""Filter structures: Bloom filters and the distribution-aware bloom filter.

The lineage the paper builds on (Section III-B):

* :class:`BloomFilter` — classic membership filter (Bloom 1970): "possibly
  in the set" / "definitely not in the set".
* :class:`DistanceSensitiveBloomFilter` — is the query *close to an
  element*? (Goswami et al., SODA 2017), built here as an LSH-signature
  Bloom filter.
* :class:`DABF` — the paper's contribution: is the query *close to most
  elements*? Per-class LSH bucket tables + a fitted distribution over the
  bucket-center-to-origin distances, queried with the 3-sigma rule.
"""

from repro.filters.bloom import BloomFilter
from repro.filters.dabf import DABF, ClassDABF, NaivePruner, PruneReport
from repro.filters.distance_sensitive import DistanceSensitiveBloomFilter
from repro.filters.distribution import DistributionFit, fit_best_distribution

__all__ = [
    "DABF",
    "BloomFilter",
    "ClassDABF",
    "DistanceSensitiveBloomFilter",
    "DistributionFit",
    "NaivePruner",
    "PruneReport",
    "fit_best_distribution",
]
