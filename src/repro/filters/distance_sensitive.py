"""Distance-sensitive Bloom filter (Goswami et al., SODA 2017, simplified).

Answers "is the query *close to some element* of the set?" — the
intermediate point between the classic Bloom filter (exact membership) and
the paper's DABF (close to *most* elements). Built as a Bloom filter over
LSH signatures: nearby points collide in signature space with probability
``>= p1`` per Def. 10, so a positive answer means "possibly close to an
element" and a negative answer means "definitely not close" (up to the
Bloom false-positive rate and the LSH miss rate).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.filters.bloom import BloomFilter
from repro.lsh.base import LSHFamily


class DistanceSensitiveBloomFilter:
    """Bloom filter over LSH signatures.

    Parameters
    ----------
    families:
        One or more LSH families over the same input dimension; multiple
        independent families boost recall (a near neighbour only needs to
        collide in one of them).
    expected_items:
        Sizing hint for the underlying Bloom filter.
    fp_rate:
        Target Bloom false-positive rate.
    """

    def __init__(
        self,
        families: list[LSHFamily],
        expected_items: int = 1024,
        fp_rate: float = 0.01,
    ) -> None:
        if not families:
            raise ValidationError("at least one LSH family is required")
        dims = {fam.dim for fam in families}
        if len(dims) != 1:
            raise ValidationError(f"families disagree on input dim: {sorted(dims)}")
        self.families = list(families)
        self.dim = self.families[0].dim
        self._bloom = BloomFilter.with_capacity(
            max(1, expected_items * len(self.families)), fp_rate
        )
        self._n_items = 0

    def add(self, x: np.ndarray) -> None:
        """Insert an element by all its signatures."""
        x = np.asarray(x, dtype=np.float64)
        for idx, family in enumerate(self.families):
            self._bloom.add((idx,) + family.signature(x))
        self._n_items += 1

    def query(self, x: np.ndarray) -> bool:
        """True = "possibly close to an element"; False = "definitely not close"."""
        x = np.asarray(x, dtype=np.float64)
        return any(
            (idx,) + family.signature(x) in self._bloom
            for idx, family in enumerate(self.families)
        )

    def __len__(self) -> int:
        return self._n_items
