"""LTS: Learning Time-Series Shapelets (Grabocka et al., KDD 2014).

Shapelets are *learned* rather than searched: a set of shapelet vectors is
initialized from k-means centroids of training subsequences and optimized
jointly with a logistic model by gradient descent. The feature of series
``T`` w.r.t. shapelet ``S`` is the soft minimum of the per-window mean
squared distances,

    m = -(1/alpha) log sum_w exp(-alpha * d_w)

whose gradient distributes over windows by their softmax weights — the
differentiable surrogate of the paper's hard-min Def.-4 distance.

Unlike the transform-based methods, LTS classifies directly with its
logistic head, so this class implements its own fit/predict rather than
subclassing the shared transform stack.
"""

from __future__ import annotations

import time

import numpy as np

from repro.classify.kmeans import KMeans
from repro.exceptions import NotFittedError, ValidationError
from repro.ts.series import Dataset
from repro.types import ParamsMixin, Shapelet


def _softmax_rows(Z: np.ndarray) -> np.ndarray:
    Z = Z - Z.max(axis=1, keepdims=True)
    E = np.exp(Z)
    return E / E.sum(axis=1, keepdims=True)


class LearningShapelets(ParamsMixin):
    """LTS classifier.

    Parameters
    ----------
    k_per_class:
        Learned shapelets per class.
    length_ratio:
        Shapelet length as a fraction of the series length.
    alpha:
        Soft-minimum sharpness (larger = closer to the hard min).
    lr, epochs, l2:
        Gradient-descent hyperparameters.
    seed:
        Reproducibility seed (k-means init, sampling).
    """

    def __init__(
        self,
        k_per_class: int = 5,
        length_ratio: float = 0.2,
        alpha: float = 25.0,
        lr: float = 0.2,
        epochs: int = 300,
        l2: float = 1e-3,
        seed: int | None = 0,
    ) -> None:
        if k_per_class < 1:
            raise ValidationError("k_per_class must be >= 1")
        if not 0.0 < length_ratio <= 1.0:
            raise ValidationError("length_ratio must be in (0, 1]")
        if alpha <= 0:
            raise ValidationError("alpha must be > 0")
        self.k_per_class = k_per_class
        self.length_ratio = length_ratio
        self.alpha = alpha
        self.lr = lr
        self.epochs = epochs
        self.l2 = l2
        self.seed = seed
        self.shapelets_: list[Shapelet] | None = None
        self.discovery_seconds_: float = float("nan")
        self._S: np.ndarray | None = None  # (n_shapelets, L)
        self._W: np.ndarray | None = None  # (n_classes, n_shapelets)
        self._b: np.ndarray | None = None
        self._dataset: Dataset | None = None

    def _init_shapelets(self, dataset: Dataset, length: int, rng) -> np.ndarray:
        """k-means centroids of sampled training subsequences."""
        n_shapelets = self.k_per_class * dataset.n_classes
        samples = []
        for _ in range(max(20 * n_shapelets, 100)):
            row = int(rng.integers(dataset.n_series))
            start = int(rng.integers(dataset.series_length - length + 1))
            samples.append(dataset.X[row, start : start + length])
        km = KMeans(n_clusters=n_shapelets, seed=rng).fit(np.vstack(samples))
        return km.centers_.copy()

    def _features_and_weights(
        self, X: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Soft-min features M (M_ij), window distances D, softmax weights."""
        S = self._S
        n, series_len = X.shape
        n_shp, L = S.shape
        windows = np.lib.stride_tricks.sliding_window_view(X, L, axis=1)
        # windows: (n, W, L); distances to each shapelet: (n, n_shp, W)
        w_sq = np.einsum("nwl,nwl->nw", windows, windows)
        s_sq = np.einsum("kl,kl->k", S, S)
        cross = np.einsum("nwl,kl->nkw", windows, S)
        D = (w_sq[:, None, :] - 2.0 * cross + s_sq[None, :, None]) / L
        # Soft minimum over windows.
        Z = -self.alpha * D
        Zmax = Z.max(axis=2, keepdims=True)
        E = np.exp(Z - Zmax)
        sumE = E.sum(axis=2, keepdims=True)
        M = -(Zmax[:, :, 0] + np.log(sumE[:, :, 0])) / self.alpha
        weights = E / sumE  # softmax over windows, (n, n_shp, W)
        return M, D, weights

    def fit_dataset(self, dataset: Dataset) -> "LearningShapelets":
        """Jointly learn shapelets and the logistic head."""
        start_time = time.perf_counter()
        rng = np.random.default_rng(self.seed)
        length = max(4, int(round(self.length_ratio * dataset.series_length)))
        length = min(length, dataset.series_length)
        self._dataset = dataset
        self._S = self._init_shapelets(dataset, length, rng)
        n_classes = dataset.n_classes
        n_shp = self._S.shape[0]
        self._W = 0.01 * rng.standard_normal((n_classes, n_shp))
        self._b = np.zeros(n_classes)
        X, y = dataset.X, dataset.y
        n = X.shape[0]
        Y = np.zeros((n, n_classes))
        Y[np.arange(n), y] = 1.0
        L = self._S.shape[1]
        windows = np.lib.stride_tricks.sliding_window_view(X, L, axis=1)
        for _epoch in range(self.epochs):
            M, _D, weights = self._features_and_weights(X)
            logits = M @ self._W.T + self._b
            P = _softmax_rows(logits)
            G = (P - Y) / n  # (n, n_classes)
            grad_W = G.T @ M + self.l2 * self._W
            grad_b = G.sum(axis=0)
            # dL/dM: (n, n_shp)
            dM = G @ self._W
            # dM/dS via softmin weights: dD_w/dS_k = (2/L)(S_k - window_w)
            coeff = dM[:, :, None] * weights  # (n, n_shp, W)
            sum_coeff = coeff.sum(axis=(0, 2))  # (n_shp,)
            weighted_windows = np.einsum("nkw,nwl->kl", coeff, windows)
            grad_S = (2.0 / L) * (sum_coeff[:, None] * self._S - weighted_windows)
            self._W -= self.lr * grad_W
            self._b -= self.lr * grad_b
            self._S -= self.lr * grad_S
        self.discovery_seconds_ = time.perf_counter() - start_time
        self.shapelets_ = [
            Shapelet(values=self._S[i].copy(), label=int(i // self.k_per_class) % n_classes)
            for i in range(n_shp)
        ]
        return self

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LearningShapelets":
        """Fit on raw arrays."""
        return self.fit_dataset(Dataset(X=X, y=y))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels in the caller's original label values."""
        if self._S is None or self._dataset is None:
            raise NotFittedError("call fit before predict")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        M, _D, _weights = self._features_and_weights(X)
        logits = M @ self._W.T + self._b
        internal = np.argmax(logits, axis=1)
        return self._dataset.classes_[internal]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy against original-valued labels."""
        from repro.classify.metrics import accuracy_score

        return accuracy_score(np.asarray(y, dtype=np.int64), self.predict(X))
