"""SFA: Symbolic Fourier Approximation (Schaefer & Hoegqvist 2012).

The frequency-domain sibling of SAX, and the word generator inside BOSS:
a subsequence is represented by its first Fourier coefficients, each
quantized against per-coefficient bin edges learned from the training data
(MCB, multiple coefficient binning — here equi-depth binning).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.ts.preprocessing import znormalize


def fourier_coefficients(
    series: np.ndarray, n_coefficients: int, norm: bool = True
) -> np.ndarray:
    """First ``n_coefficients`` real-valued DFT features of a subsequence.

    Features interleave the real and imaginary parts of the low-frequency
    rFFT bins, skipping the DC term when ``norm`` (z-normalized input has
    zero mean, making DC uninformative).
    """
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim != 1 or arr.size < 2:
        raise ValidationError("fourier_coefficients expects a 1-D series, len >= 2")
    values = znormalize(arr) if norm else arr
    spectrum = np.fft.rfft(values)
    start = 1 if norm else 0
    parts: list[float] = []
    idx = start
    while len(parts) < n_coefficients and idx < spectrum.size:
        parts.append(spectrum[idx].real)
        if len(parts) < n_coefficients:
            parts.append(spectrum[idx].imag)
        idx += 1
    while len(parts) < n_coefficients:
        parts.append(0.0)
    return np.asarray(parts[:n_coefficients])


class SFA:
    """Learned SFA quantizer.

    Parameters
    ----------
    n_coefficients:
        Word length (DFT features kept).
    alphabet_size:
        Symbols per coefficient.
    norm:
        z-normalize subsequences before the DFT (amplitude-invariant).
    """

    def __init__(
        self, n_coefficients: int = 8, alphabet_size: int = 4, norm: bool = True
    ) -> None:
        if n_coefficients < 1:
            raise ValidationError("n_coefficients must be >= 1")
        if alphabet_size < 2:
            raise ValidationError("alphabet_size must be >= 2")
        self.n_coefficients = n_coefficients
        self.alphabet_size = alphabet_size
        self.norm = norm
        self.bin_edges_: np.ndarray | None = None  # (n_coefficients, a-1)

    def fit(self, subsequences: np.ndarray) -> "SFA":
        """Learn equi-depth bin edges per coefficient (MCB)."""
        subsequences = np.asarray(subsequences, dtype=np.float64)
        if subsequences.ndim != 2 or subsequences.shape[0] < 2:
            raise ValidationError("fit expects >= 2 subsequences, shape (n, L)")
        features = np.vstack(
            [
                fourier_coefficients(row, self.n_coefficients, self.norm)
                for row in subsequences
            ]
        )
        quantiles = np.linspace(0.0, 1.0, self.alphabet_size + 1)[1:-1]
        self.bin_edges_ = np.quantile(features, quantiles, axis=0).T
        return self

    def word(self, subsequence: np.ndarray) -> tuple[int, ...]:
        """SFA word of one subsequence."""
        if self.bin_edges_ is None:
            raise NotFittedError("call fit before word")
        features = fourier_coefficients(
            subsequence, self.n_coefficients, self.norm
        )
        return tuple(
            int(np.searchsorted(self.bin_edges_[i], features[i]))
            for i in range(self.n_coefficients)
        )

    def words_of_windows(self, series: np.ndarray, window: int) -> list[tuple[int, ...]]:
        """SFA words of every sliding window of ``series``."""
        series = np.asarray(series, dtype=np.float64)
        windows = np.lib.stride_tricks.sliding_window_view(series, window)
        return [self.word(w) for w in windows]
