"""PAA and SAX: symbolic aggregate approximation (Lin et al. 2003).

Substrate for the Fast Shapelets and BSPCOVER baselines: subsequences are
z-normalized, piecewise-aggregated (PAA), and quantized against the
standard normal breakpoints into short words over a small alphabet.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.exceptions import ValidationError
from repro.ts.preprocessing import znormalize

_BREAKPOINT_CACHE: dict[int, np.ndarray] = {}


def gaussian_breakpoints(alphabet_size: int) -> np.ndarray:
    """Equiprobable N(0,1) breakpoints for the given alphabet size."""
    if alphabet_size < 2:
        raise ValidationError(f"alphabet_size must be >= 2, got {alphabet_size}")
    cached = _BREAKPOINT_CACHE.get(alphabet_size)
    if cached is None:
        quantiles = np.arange(1, alphabet_size) / alphabet_size
        cached = stats.norm.ppf(quantiles)
        _BREAKPOINT_CACHE[alphabet_size] = cached
    return cached


def paa(series: np.ndarray, n_segments: int) -> np.ndarray:
    """Piecewise aggregate approximation: per-segment means.

    Segments split the series as evenly as possible (the standard
    fractional-boundary formulation is approximated by index splitting,
    which is exact when ``n_segments`` divides the length).
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1 or series.size == 0:
        raise ValidationError("paa expects a non-empty 1-D series")
    if n_segments < 1:
        raise ValidationError(f"n_segments must be >= 1, got {n_segments}")
    n_segments = min(n_segments, series.size)
    bounds = np.linspace(0, series.size, n_segments + 1).astype(np.int64)
    return np.array(
        [series[bounds[i] : bounds[i + 1]].mean() for i in range(n_segments)]
    )


def sax_word(
    series: np.ndarray, n_segments: int = 8, alphabet_size: int = 4
) -> tuple[int, ...]:
    """SAX word of a subsequence: z-normalize, PAA, quantize.

    Returns a tuple of symbol indices in ``0..alphabet_size-1`` (hashable,
    suitable as a Bloom-filter key).
    """
    normalized = znormalize(np.asarray(series, dtype=np.float64))
    aggregated = paa(normalized, n_segments)
    breakpoints = gaussian_breakpoints(alphabet_size)
    return tuple(int(s) for s in np.searchsorted(breakpoints, aggregated))


def sax_words_of_windows(
    series: np.ndarray, window: int, n_segments: int = 8, alphabet_size: int = 4
) -> list[tuple[int, ...]]:
    """SAX words for every sliding window of ``series``."""
    series = np.asarray(series, dtype=np.float64)
    windows = np.lib.stride_tricks.sliding_window_view(series, window)
    return [sax_word(w, n_segments, alphabet_size) for w in windows]
