"""BOSS: Bag-of-SFA-Symbols (Schaefer, DMKD 2015).

The strong dictionary-based classifier: per-series histograms over SFA
words of sliding windows (with numerosity reduction), classified by 1NN
under the *BOSS distance* — a non-symmetric squared distance that sums
only over words present in the query's histogram, making it robust to
words the query never saw.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.sfa import SFA
from repro.exceptions import NotFittedError, ValidationError
from repro.ts.series import Dataset
from repro.types import ParamsMixin


def boss_distance(query_hist: dict, reference_hist: dict) -> float:
    """Non-symmetric BOSS distance: sum over the query's words only."""
    return float(
        sum(
            (count - reference_hist.get(word, 0.0)) ** 2
            for word, count in query_hist.items()
        )
    )


class BOSS(ParamsMixin):
    """BOSS classifier.

    Parameters
    ----------
    window_ratio:
        Sliding-window length as a fraction of the series length.
    n_coefficients, alphabet_size:
        SFA word shape (the classic BOSS default is word length 8-16 over
        a 4-letter alphabet).
    numerosity_reduction:
        Collapse runs of identical consecutive words.
    max_fit_windows:
        Cap on the training subsequences used to learn the SFA bins.
    """

    def __init__(
        self,
        window_ratio: float = 0.3,
        n_coefficients: int = 8,
        alphabet_size: int = 4,
        numerosity_reduction: bool = True,
        max_fit_windows: int = 2000,
        seed: int | None = 0,
    ) -> None:
        if not 0.0 < window_ratio <= 1.0:
            raise ValidationError("window_ratio must be in (0, 1]")
        if max_fit_windows < 2:
            raise ValidationError("max_fit_windows must be >= 2")
        self.window_ratio = window_ratio
        self.n_coefficients = n_coefficients
        self.alphabet_size = alphabet_size
        self.numerosity_reduction = numerosity_reduction
        self.max_fit_windows = max_fit_windows
        self.seed = seed
        self._sfa: SFA | None = None
        self._window: int = 0
        self._train_histograms: list[dict] | None = None
        self._train_y: np.ndarray | None = None
        self._classes: np.ndarray | None = None
        self.discovery_seconds_: float = 0.0

    def _histogram(self, series: np.ndarray) -> dict:
        words = self._sfa.words_of_windows(series, self._window)
        if self.numerosity_reduction:
            reduced = [words[0]]
            for word in words[1:]:
                if word != reduced[-1]:
                    reduced.append(word)
            words = reduced
        histogram: dict = {}
        for word in words:
            histogram[word] = histogram.get(word, 0.0) + 1.0
        return histogram

    def fit_dataset(self, dataset: Dataset) -> "BOSS":
        """Learn SFA bins from training windows, then build histograms."""
        self._window = max(
            self.n_coefficients + 2,
            int(round(self.window_ratio * dataset.series_length)),
        )
        self._window = min(self._window, dataset.series_length)
        rng = np.random.default_rng(self.seed)
        n_positions = dataset.series_length - self._window + 1
        samples = []
        for _ in range(min(self.max_fit_windows, dataset.n_series * n_positions)):
            row = int(rng.integers(dataset.n_series))
            start = int(rng.integers(n_positions))
            samples.append(dataset.X[row, start : start + self._window])
        self._sfa = SFA(
            n_coefficients=min(self.n_coefficients, self._window - 2),
            alphabet_size=self.alphabet_size,
        ).fit(np.vstack(samples))
        self._train_histograms = [self._histogram(row) for row in dataset.X]
        self._train_y = dataset.y
        self._classes = dataset.classes_
        return self

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BOSS":
        """Fit on raw arrays."""
        return self.fit_dataset(Dataset(X=X, y=y))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """1NN under the BOSS distance (original label values)."""
        if self._sfa is None or self._classes is None:
            raise NotFittedError("call fit before predict")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        out = np.empty(X.shape[0], dtype=np.int64)
        for i, row in enumerate(X):
            query = self._histogram(row)
            distances = [
                boss_distance(query, reference)
                for reference in self._train_histograms
            ]
            out[i] = self._train_y[int(np.argmin(distances))]
        return self._classes[out]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy against original-valued labels."""
        from repro.classify.metrics import accuracy_score

        return accuracy_score(np.asarray(y, dtype=np.int64), self.predict(X))
