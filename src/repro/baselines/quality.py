"""Shapelet quality measures: entropy and information gain.

The classic shapelet literature (Ye & Keogh 2009; Lines et al. 2012) scores
a candidate by the information gain of the best binary split of the
training set ordered by distance to the candidate. Shared by the ST, FS,
SD, and BSPCOVER baselines.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def entropy(labels: np.ndarray) -> float:
    """Shannon entropy (bits) of a label multiset."""
    labels = np.asarray(labels)
    if labels.size == 0:
        return 0.0
    _classes, counts = np.unique(labels, return_counts=True)
    proportions = counts / labels.size
    return float(-np.sum(proportions * np.log2(proportions)))


def best_information_gain(
    distances: np.ndarray, labels: np.ndarray
) -> tuple[float, float]:
    """Best ``(gain, threshold)`` over all binary splits of the order line.

    ``distances[i]`` is the distance of training instance ``i`` to the
    candidate; candidate thresholds are the midpoints between consecutive
    distinct sorted distances.
    """
    distances = np.asarray(distances, dtype=np.float64)
    labels = np.asarray(labels)
    if distances.shape != labels.shape:
        raise ValidationError("distances and labels must align")
    n = distances.size
    if n < 2:
        return 0.0, float("inf")
    order = np.argsort(distances, kind="stable")
    sorted_d = distances[order]
    sorted_y = labels[order]
    classes, y_idx = np.unique(sorted_y, return_inverse=True)
    k = classes.size
    if k < 2:
        return 0.0, float(sorted_d[0])
    parent = entropy(sorted_y)
    onehot = np.zeros((n, k))
    onehot[np.arange(n), y_idx] = 1.0
    left_counts = np.cumsum(onehot, axis=0)
    total_counts = left_counts[-1]
    split_points = np.flatnonzero(np.diff(sorted_d) > 0)
    if split_points.size == 0:
        return 0.0, float(sorted_d[0])
    best_gain, best_threshold = 0.0, float(sorted_d[0])
    left_n = (split_points + 1).astype(np.float64)
    right_n = n - left_n
    lc = left_counts[split_points]
    rc = total_counts - lc
    # left_n >= 1 and right_n >= 1 (split points exclude the last index),
    # so the divisions are safe; zero-probability terms contribute exactly
    # 0 via log2(1) = 0 instead of suppressing a 0 * log(0) warning.
    lp = lc / left_n[:, None]
    rp = rc / right_n[:, None]
    le = -np.sum(lp * np.log2(np.where(lp > 0.0, lp, 1.0)), axis=1)
    re = -np.sum(rp * np.log2(np.where(rp > 0.0, rp, 1.0)), axis=1)
    gains = parent - (left_n * le + right_n * re) / n
    idx = int(np.argmax(gains))
    if gains[idx] > best_gain:
        best_gain = float(gains[idx])
        pos = split_points[idx]
        best_threshold = float(0.5 * (sorted_d[pos] + sorted_d[pos + 1]))
    return best_gain, best_threshold
