"""BSPCOVER (Li et al., TKDE 2020): the paper's efficiency state of the art.

Pipeline reproduced from the description in [23]:

1. **Candidate generation** — subsequences of every training instance at
   the shared length-ratio grid (a stride bounds the enumeration);
2. **Bloom-filter pruning** — candidates whose SAX word has already been
   seen are duplicates of an earlier candidate and are skipped;
3. **Quality measurement** — each surviving candidate is evaluated against
   *every* training instance (Def.-4 distances) and scored by the
   information gain of its best split. This full evaluation is the cost
   the paper's Tables IV/V measure BSPCOVER by: it is inherently one to
   two orders of magnitude more work than IPS's sampled instance profile;
4. **p-cover selection** — candidates are greedily selected so every
   training instance is "covered" (correctly split) at least ``p`` times,
   with at most ``k`` shapelets per class.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ShapeletTransformClassifier
from repro.baselines.quality import best_information_gain
from repro.baselines.sax import sax_word
from repro.exceptions import ValidationError
from repro.filters.bloom import BloomFilter
from repro.instanceprofile.sampling import resolve_lengths
from repro.kernels import distance_profile
from repro.ts.series import Dataset
from repro.types import Shapelet

DEFAULT_LENGTH_RATIOS: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5)


class BSPCover(ShapeletTransformClassifier):
    """BSPCOVER classifier.

    Parameters
    ----------
    k:
        Maximum shapelets per class.
    p:
        Cover multiplicity: each training instance should be covered by at
        least this many selected shapelets.
    length_ratios:
        Candidate lengths as fractions of the series length.
    stride_fraction:
        Candidate enumeration stride as a fraction of the window length
        (1.0 = non-overlapping; smaller = denser and slower).
    sax_segments, sax_alphabet:
        SAX parameters for the Bloom-filter dedup.
    """

    def __init__(
        self,
        k: int = 5,
        p: int = 2,
        length_ratios: tuple[float, ...] = DEFAULT_LENGTH_RATIOS,
        stride_fraction: float = 0.5,
        sax_segments: int = 8,
        sax_alphabet: int = 4,
        svm_c: float = 1.0,
        seed: int | None = 0,
    ) -> None:
        super().__init__(svm_c=svm_c, seed=seed)
        if k < 1 or p < 1:
            raise ValidationError("k and p must be >= 1")
        if not 0.0 < stride_fraction <= 1.0:
            raise ValidationError("stride_fraction must be in (0, 1]")
        self.k = k
        self.p = p
        self.length_ratios = length_ratios
        self.stride_fraction = stride_fraction
        self.sax_segments = sax_segments
        self.sax_alphabet = sax_alphabet

    def _generate(self, dataset: Dataset) -> list[tuple[np.ndarray, int, int, int]]:
        """Bloom-deduplicated candidates: (values, label, instance, start)."""
        lengths = resolve_lengths(dataset.series_length, self.length_ratios)
        bloom = BloomFilter.with_capacity(
            max(64, dataset.n_series * dataset.series_length), fp_rate=0.01
        )
        candidates: list[tuple[np.ndarray, int, int, int]] = []
        for row_idx in range(dataset.n_series):
            series = dataset.X[row_idx]
            label = int(dataset.y[row_idx])
            for length in lengths:
                if length > series.size:
                    continue
                stride = max(1, int(round(self.stride_fraction * length)))
                for start in range(0, series.size - length + 1, stride):
                    values = series[start : start + length]
                    word = (length,) + sax_word(
                        values, self.sax_segments, self.sax_alphabet
                    )
                    if word in bloom:
                        continue  # similar candidate already kept
                    bloom.add(word)
                    candidates.append((values.copy(), label, row_idx, start))
        return candidates

    def discover(self, dataset: Dataset) -> list[Shapelet]:
        """Full BSPCOVER discovery."""
        if dataset.n_classes < 2:
            raise ValidationError("BSPCOVER requires at least 2 classes")
        candidates = self._generate(dataset)
        if not candidates:
            raise ValidationError("BSPCOVER generated no candidates")

        # Score every candidate against every training instance.
        scored: list[tuple[float, float, int]] = []  # (gain, threshold, idx)
        all_distances = np.empty((len(candidates), dataset.n_series))
        for c_idx, (values, _label, _row, _start) in enumerate(candidates):
            for t_idx in range(dataset.n_series):
                profile = distance_profile(values, dataset.X[t_idx])
                all_distances[c_idx, t_idx] = profile.min() / values.size
            gain, threshold = best_information_gain(all_distances[c_idx], dataset.y)
            scored.append((gain, threshold, c_idx))
        scored.sort(key=lambda item: -item[0])

        # Greedy p-cover selection.
        cover_counts = np.zeros(dataset.n_series, dtype=np.int64)
        per_class_quota = {label: self.k for label in range(dataset.n_classes)}
        shapelets: list[Shapelet] = []
        for gain, threshold, c_idx in scored:
            values, label, row_idx, start = candidates[c_idx]
            if per_class_quota[label] <= 0:
                continue
            near = all_distances[c_idx] <= threshold
            correct = near == (dataset.y == label)
            newly_covered = correct & (cover_counts < self.p)
            if not np.any(newly_covered) and cover_counts.min() >= self.p:
                continue
            if gain <= 0.0:
                break
            cover_counts[correct] += 1
            per_class_quota[label] -= 1
            shapelets.append(
                Shapelet(
                    values=values,
                    label=label,
                    score=-gain,
                    source_instance=row_idx,
                    start=start,
                )
            )
            if all(q <= 0 for q in per_class_quota.values()):
                break
        if not shapelets:
            # Degenerate data: fall back to the single best candidate.
            gain, threshold, c_idx = scored[0]
            values, label, row_idx, start = candidates[c_idx]
            shapelets.append(
                Shapelet(
                    values=values,
                    label=label,
                    score=-gain,
                    source_instance=row_idx,
                    start=start,
                )
            )
        return shapelets
