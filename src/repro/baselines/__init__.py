"""Compared methods (Section IV-A of the paper).

Runnable implementations:

* :class:`MPBaseline` (BASE) — the matrix-profile baseline of Yeh et al.
  [37]: concatenate each class, take the top-k largest profile differences
  (Formula 4);
* :class:`BSPCover` — bloom-filter pruning + p-cover selection (Li et al.,
  TKDE 2020), the paper's efficiency state of the art;
* :class:`FastShapelets` — SAX words + random masking (Rakthanmanon &
  Keogh, SDM 2013);
* :class:`LearningShapelets` (LTS) — gradient-learned shapelets + logistic
  model (Grabocka et al., KDD 2014);
* :class:`ShapeletTransformST` (ST) — information-gain full search (Lines
  et al., KDD 2012);
* :class:`ScalableDiscovery` (SD) — clustering-based candidate pruning
  (Grabocka et al., KAIS 2016).

Quoted methods (COTE, COTE-IPS, ResNet, ELIS, RotF, DTW): per-dataset
accuracies from the paper's Table VI live in
:mod:`repro.baselines.published`, consumed by the Table VI / Fig. 11
harnesses exactly as the paper consumed numbers from other papers.
"""

from repro.baselines.bag_of_patterns import BagOfPatterns
from repro.baselines.base import ShapeletTransformClassifier
from repro.baselines.boss import BOSS
from repro.baselines.bspcover import BSPCover
from repro.baselines.elis import ELIS
from repro.baselines.interval_forest import TimeSeriesForest
from repro.baselines.fast_shapelets import FastShapelets
from repro.baselines.learning_shapelets import LearningShapelets
from repro.baselines.mp_base import MPBaseline
from repro.baselines.published import PUBLISHED_ACCURACY, published_methods
from repro.baselines.quality import best_information_gain, entropy
from repro.baselines.sax import paa, sax_word
from repro.baselines.scalable_discovery import ScalableDiscovery
from repro.baselines.shapelet_transform_st import ShapeletTransformST

__all__ = [
    "BOSS",
    "BSPCover",
    "BagOfPatterns",
    "ELIS",
    "FastShapelets",
    "TimeSeriesForest",
    "LearningShapelets",
    "MPBaseline",
    "PUBLISHED_ACCURACY",
    "ScalableDiscovery",
    "ShapeletTransformClassifier",
    "ShapeletTransformST",
    "best_information_gain",
    "entropy",
    "paa",
    "published_methods",
    "sax_word",
]
