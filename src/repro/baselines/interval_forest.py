"""Time Series Forest (Deng et al. 2013): the intervals-based category.

The paper's introduction (and the bake-off survey [2] it cites) divides
classical TSC into whole-series, intervals-based, dictionary-based, and
model-based approaches; TSF is the canonical intervals method. Each tree
sees summary statistics (mean, std, slope) of sqrt(N) random intervals;
the ensemble votes.
"""

from __future__ import annotations

import numpy as np

from repro.classify.tree import DecisionTree
from repro.exceptions import NotFittedError, ValidationError
from repro.ts.series import Dataset
from repro.types import ParamsMixin


def interval_features(X: np.ndarray, intervals: np.ndarray) -> np.ndarray:
    """Mean / std / slope of each (start, end) interval, per series.

    Returns ``(M, 3 * n_intervals)``.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValidationError("interval_features expects an (M, N) matrix")
    blocks = []
    for start, end in intervals:
        segment = X[:, start:end]
        means = segment.mean(axis=1)
        stds = segment.std(axis=1)
        width = end - start
        if width >= 2:
            t = np.arange(width) - (width - 1) / 2.0
            denom = float(np.sum(t * t))
            slopes = (segment * t).sum(axis=1) / denom
        else:
            slopes = np.zeros(X.shape[0])
        blocks.append(np.column_stack([means, stds, slopes]))
    return np.hstack(blocks)


class TimeSeriesForest(ParamsMixin):
    """TSF classifier.

    Parameters
    ----------
    n_estimators:
        Trees in the ensemble.
    n_intervals:
        Random intervals per tree (``None`` = ``ceil(sqrt(N))``).
    min_interval:
        Minimum interval width.
    max_depth:
        Depth cap passed to member trees.
    seed:
        Reproducibility seed.
    """

    def __init__(
        self,
        n_estimators: int = 20,
        n_intervals: int | None = None,
        min_interval: int = 3,
        max_depth: int | None = None,
        seed: int | None = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValidationError("n_estimators must be >= 1")
        if min_interval < 2:
            raise ValidationError("min_interval must be >= 2")
        self.n_estimators = n_estimators
        self.n_intervals = n_intervals
        self.min_interval = min_interval
        self.max_depth = max_depth
        self.seed = seed
        self.classes_: np.ndarray | None = None
        self._members: list[tuple[np.ndarray, DecisionTree]] = []
        self.discovery_seconds_: float = 0.0

    def _draw_intervals(self, length: int, rng: np.random.Generator) -> np.ndarray:
        count = self.n_intervals or max(1, int(np.ceil(np.sqrt(length))))
        min_width = min(self.min_interval, length)
        intervals = np.empty((count, 2), dtype=np.int64)
        for i in range(count):
            width = int(rng.integers(min_width, length + 1))
            start = int(rng.integers(0, length - width + 1))
            intervals[i] = (start, start + width)
        return intervals

    def fit(self, X: np.ndarray, y: np.ndarray) -> "TimeSeriesForest":
        """Train the interval-tree ensemble."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2 or X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise ValidationError("X must be (M, N) with matching non-empty y")
        rng = np.random.default_rng(self.seed)
        self.classes_ = np.unique(y)
        self._members = []
        for _ in range(self.n_estimators):
            intervals = self._draw_intervals(X.shape[1], rng)
            features = interval_features(X, intervals)
            tree = DecisionTree(max_depth=self.max_depth, max_features="sqrt", seed=rng)
            tree.fit(features, y)
            self._members.append((intervals, tree))
        return self

    def fit_dataset(self, dataset: Dataset) -> "TimeSeriesForest":
        """Fit on a :class:`Dataset` (internal labels)."""
        self.fit(dataset.X, dataset.y)
        self._dataset_classes = dataset.classes_
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority vote over interval trees."""
        if self.classes_ is None or not self._members:
            raise NotFittedError("call fit before predict")
        X = np.asarray(X, dtype=np.float64)
        class_index = {cls: i for i, cls in enumerate(self.classes_)}
        votes = np.zeros((X.shape[0], self.classes_.size), dtype=np.int64)
        for intervals, tree in self._members:
            features = interval_features(X, intervals)
            for row, pred in enumerate(tree.predict(features)):
                votes[row, class_index[int(pred)]] += 1
        return self.classes_[np.argmax(votes, axis=1)].astype(np.int64)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy against the labels used at fit time."""
        from repro.classify.metrics import accuracy_score

        # When fitted through fit_dataset, callers pass original labels.
        predictions = self.predict(X)
        if hasattr(self, "_dataset_classes"):
            predictions = self._dataset_classes[predictions]
        return accuracy_score(np.asarray(y, dtype=np.int64), predictions)
