"""Fast Shapelets (Rakthanmanon & Keogh, SDM 2013).

The FS column of Table VI: subsequences are reduced to SAX words; several
rounds of *random masking* project the words onto random symbol subsets;
collision counts per class estimate each word's distinguishing power
(words frequent in one class and rare elsewhere score high); the top-scored
candidates are refined with exact information gain and the best per class
become shapelets.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.baselines.base import ShapeletTransformClassifier
from repro.baselines.quality import best_information_gain
from repro.baselines.sax import sax_word
from repro.exceptions import ValidationError
from repro.instanceprofile.sampling import resolve_lengths
from repro.kernels import SeriesCache, batch_min_distance
from repro.ts.series import Dataset
from repro.types import Shapelet

DEFAULT_LENGTH_RATIOS: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5)


class FastShapelets(ShapeletTransformClassifier):
    """FS classifier.

    Parameters
    ----------
    k:
        Shapelets per class.
    n_masking_rounds:
        Random-projection iterations ``r``.
    mask_size:
        Symbols masked out per round.
    refine_top:
        Candidates per class refined with exact information gain.
    sax_segments, sax_alphabet:
        SAX word shape.
    stride_fraction:
        Enumeration stride as a fraction of the window length.
    """

    def __init__(
        self,
        k: int = 5,
        n_masking_rounds: int = 10,
        mask_size: int = 3,
        refine_top: int = 10,
        length_ratios: tuple[float, ...] = DEFAULT_LENGTH_RATIOS,
        sax_segments: int = 8,
        sax_alphabet: int = 4,
        stride_fraction: float = 0.5,
        svm_c: float = 1.0,
        seed: int | None = 0,
        budget=None,
    ) -> None:
        super().__init__(svm_c=svm_c, seed=seed, budget=budget)
        if k < 1 or n_masking_rounds < 1 or refine_top < 1:
            raise ValidationError("k, n_masking_rounds, refine_top must be >= 1")
        if not 1 <= mask_size < sax_segments:
            raise ValidationError("mask_size must be in [1, sax_segments)")
        self.k = k
        self.n_masking_rounds = n_masking_rounds
        self.mask_size = mask_size
        self.refine_top = refine_top
        self.length_ratios = length_ratios
        self.sax_segments = sax_segments
        self.sax_alphabet = sax_alphabet
        self.stride_fraction = stride_fraction

    def discover(self, dataset: Dataset) -> list[Shapelet]:
        """SAX + random masking discovery.

        With :attr:`budget` set, the budget is checked between masking
        rounds (at least one always runs) and between refinement
        candidates (at least one per class); an exhausted budget
        truncates at those deterministic boundaries and records itself
        in ``completed_``.
        """
        if dataset.n_classes < 2:
            raise ValidationError("Fast Shapelets requires at least 2 classes")
        rng = np.random.default_rng(self.seed)
        tracker = self.budget.start() if self.budget is not None else None
        self.completed_ = True
        lengths = resolve_lengths(dataset.series_length, self.length_ratios)
        class_counts = np.bincount(dataset.y, minlength=dataset.n_classes).astype(
            np.float64
        )

        # Enumerate (word, provenance) entries.
        entries: list[tuple[tuple[int, ...], int, int, int, int]] = []
        # (word, label, row, start, length)
        for row_idx in range(dataset.n_series):
            series = dataset.X[row_idx]
            label = int(dataset.y[row_idx])
            for length in lengths:
                if length > series.size:
                    continue
                stride = max(1, int(round(self.stride_fraction * length)))
                for start in range(0, series.size - length + 1, stride):
                    word = sax_word(
                        series[start : start + length],
                        self.sax_segments,
                        self.sax_alphabet,
                    )
                    entries.append((word, label, row_idx, start, length))
        if not entries:
            raise ValidationError("Fast Shapelets enumerated no candidates")
        if tracker is not None:
            tracker.charge(
                len(entries), sum(e[4] for e in entries)
            )

        # Random masking: per round, per masked word, count distinct rows
        # per class whose window collides under the mask.
        scores = np.zeros(len(entries))
        rounds_done = 0
        for round_no in range(self.n_masking_rounds):
            if tracker is not None and round_no > 0 and tracker.exhausted:
                self.completed_ = False
                break
            rounds_done += 1
            masked_positions = rng.choice(
                self.sax_segments, size=self.mask_size, replace=False
            )
            keep = np.setdiff1d(np.arange(self.sax_segments), masked_positions)
            collision_rows: dict[tuple, set[tuple[int, int]]] = defaultdict(set)
            masked_words = []
            for word, label, row_idx, _start, length in entries:
                # Words of short subsequences can have fewer symbols than
                # sax_segments (PAA clamps); mask only existing positions.
                masked = (length,) + tuple(
                    word[pos] for pos in keep if pos < len(word)
                )
                masked_words.append(masked)
                collision_rows[masked].add((label, row_idx))
            for idx, (word, label, _row, _start, _length) in enumerate(entries):
                per_class = np.zeros(dataset.n_classes)
                for other_label, _other_row in collision_rows[masked_words[idx]]:
                    per_class[other_label] += 1.0
                normalized = per_class / np.maximum(class_counts, 1.0)
                own = normalized[label]
                others = (normalized.sum() - own) / max(dataset.n_classes - 1, 1)
                scores[idx] += own - others

        if tracker is not None:
            tracker.record_phase(
                "masking",
                rounds_completed=rounds_done,
                rounds_total=self.n_masking_rounds,
            )

        # Refine the best candidates per class with exact information gain.
        # One cache spans the whole refinement: the training matrix's FFT
        # spectra and window statistics are shared across every candidate
        # (and across classes), instead of being redone per candidate.
        # Its hit/miss/FFT tallies land in ``self.perf_``.
        refine_cache = SeriesCache(counters=self.perf_counters_)
        shapelets: list[Shapelet] = []
        for label in range(dataset.n_classes):
            label_idx = [i for i, e in enumerate(entries) if e[1] == label]
            label_idx.sort(key=lambda i: -scores[i])
            refined: list[tuple[float, int]] = []
            for rank, i in enumerate(label_idx[: self.refine_top]):
                if tracker is not None and rank > 0 and tracker.exhausted:
                    self.completed_ = False
                    break
                _word, _label, row_idx, start, length = entries[i]
                values = dataset.X[row_idx][start : start + length]
                distances = batch_min_distance(
                    [values], dataset.X, cache=refine_cache
                )[:, 0]
                gain, _threshold = best_information_gain(distances, dataset.y)
                refined.append((gain, i))
            refined.sort(key=lambda item: -item[0])
            for gain, i in refined[: self.k]:
                _word, _label, row_idx, start, length = entries[i]
                shapelets.append(
                    Shapelet(
                        values=dataset.X[row_idx][start : start + length].copy(),
                        label=label,
                        score=-gain,
                        source_instance=row_idx,
                        start=start,
                    )
                )
        if not shapelets:
            raise ValidationError("Fast Shapelets found no shapelets")
        return shapelets
