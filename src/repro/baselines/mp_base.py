"""BASE: the matrix-profile baseline for shapelet discovery (Yeh et al. [37]).

The method of Section II-B / Formula 4: concatenate all training instances
of each class into one long series ``T_C``; compute the self-join profile
``P_CC`` and the AB-join ``P_C,other`` against the concatenation of every
other class; a window with a large ``|P_C,other - P_CC|`` difference is
declared a shapelet. Top-k is the k largest differences.

Both issues the paper diagnoses are faithfully present:

1. **discords as "shapelets"** — the difference can be large even when the
   window is a discord in both classes;
2. **lack of diversity** — neighbouring windows carry nearly identical
   differences, so the top-k cluster around few locations (the default
   ``exclusion=1`` only removes exact overlaps, like the original sketch).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ShapeletTransformClassifier
from repro.exceptions import ValidationError
from repro.instanceprofile.sampling import resolve_lengths
from repro.kernels import SeriesCache
from repro.matrixprofile.profile import profile_diff
from repro.matrixprofile.stomp import ab_join, stomp_self_join
from repro.ts.concat import concatenate_series
from repro.ts.series import Dataset
from repro.types import Shapelet

#: Paper's length-ratio grid (shared with IPS for fairness, Section IV-A).
DEFAULT_LENGTH_RATIOS: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5)


class MPBaseline(ShapeletTransformClassifier):
    """BASE classifier: Formula-4 shapelets + the shared transform stack.

    Parameters
    ----------
    k:
        Shapelets per class (the paper uses 5 for both BASE and IPS).
    length_ratios:
        Candidate window lengths as fractions of the series length.
    exclusion:
        Minimum separation between successive top-k picks; 1 reproduces the
        baseline's near-duplicate behaviour, larger values diversify.
    normalized:
        Distance flavour of the underlying profiles.
    """

    def __init__(
        self,
        k: int = 5,
        length_ratios: tuple[float, ...] = DEFAULT_LENGTH_RATIOS,
        exclusion: int = 1,
        normalized: bool = True,
        svm_c: float = 1.0,
        seed: int | None = 0,
        budget=None,
    ) -> None:
        super().__init__(svm_c=svm_c, seed=seed, budget=budget)
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        if exclusion < 1:
            raise ValidationError(f"exclusion must be >= 1, got {exclusion}")
        self.k = k
        self.length_ratios = length_ratios
        self.exclusion = exclusion
        self.normalized = normalized

    def _class_concats(self, dataset: Dataset, label: int):
        """The per-class (own, other) concatenations of Formula 4."""
        own = concatenate_series(
            dataset.series_of_class(label), instance_ids=dataset.class_indices(label)
        )
        other_rows = np.flatnonzero(dataset.y != label)
        other = concatenate_series(dataset.X[other_rows], instance_ids=other_rows)
        return own, other

    def _class_diffs(
        self,
        dataset: Dataset,
        label: int,
        length: int,
        cache: SeriesCache | None = None,
        concat=None,
    ) -> tuple[np.ndarray, "np.ndarray"]:
        """diff(P_C,other, P_CC) for one class and window length.

        ``concat`` lets :meth:`discover` pass pre-built concatenations so
        a shared ``cache`` (:class:`repro.kernels.SeriesCache`) can reuse
        the long series' cumulative sums and FFT spectra across the whole
        length grid — the concatenated arrays stay the same objects, so
        the cache keys stay stable.
        """
        own, other = (
            concat if concat is not None else self._class_concats(dataset, label)
        )
        mask_own = own.valid_window_mask(length)
        mask_other = other.valid_window_mask(length)
        p_self = stomp_self_join(
            own.values,
            length,
            valid_mask=mask_own,
            normalized=self.normalized,
            cache=cache,
        )
        p_cross = ab_join(
            own.values,
            other.values,
            length,
            valid_mask_a=mask_own,
            valid_mask_b=mask_other,
            normalized=self.normalized,
            cache=cache,
        )
        return profile_diff(p_cross, p_self), own

    def discover(self, dataset: Dataset) -> list[Shapelet]:
        """Top-k largest-difference windows per class (Formula 4).

        With :attr:`budget` set, the length grid is processed
        length-major (every class at the shortest length first) and the
        budget is checked between lengths, so an exhausted budget
        truncates the grid at a deterministic boundary with every class
        equally covered; ``completed_`` records the truncation.
        """
        if dataset.n_classes < 2:
            raise ValidationError("the MP baseline requires at least 2 classes")
        lengths = resolve_lengths(dataset.series_length, self.length_ratios)
        tracker = self.budget.start() if self.budget is not None else None
        # One kernel cache and one set of concatenations for the whole
        # run: the class series' FFT spectra and rolling statistics are
        # computed once and reused across the entire length grid. The
        # cache's hit/miss/FFT tallies land in ``self.perf_``.
        cache = SeriesCache(counters=self.perf_counters_)
        concats = {
            label: self._class_concats(dataset, label)
            for label in range(dataset.n_classes)
        }
        pools_by_class: dict[int, list] = {
            label: [] for label in range(dataset.n_classes)
        }
        lengths_done = 0
        for length_no, length in enumerate(lengths):
            if tracker is not None and length_no > 0 and tracker.exhausted:
                break
            for label in range(dataset.n_classes):
                diffs, own = self._class_diffs(
                    dataset, label, length, cache=cache, concat=concats[label]
                )
                pools_by_class[label].append((diffs, own, length))
                if tracker is not None:
                    tracker.charge(int(diffs.size), int(diffs.size))
            lengths_done += 1
        self.completed_ = lengths_done == len(lengths)
        shapelets: list[Shapelet] = []
        for label in range(dataset.n_classes):
            # Pool (diff, position, length) across the length grid.
            pools = pools_by_class[label]
            picks: list[tuple[float, int, int]] = []  # (diff, pool_idx, pos)
            working = [p[0].copy() for p in pools]
            for _ in range(self.k):
                best = (-np.inf, -1, -1)
                for pool_idx, diffs in enumerate(working):
                    pos = int(np.argmax(diffs))
                    if diffs[pos] > best[0]:
                        best = (float(diffs[pos]), pool_idx, pos)
                if not np.isfinite(best[0]):
                    break
                picks.append(best)
                diff_val, pool_idx, pos = best
                lo = max(0, pos - self.exclusion)
                hi = min(working[pool_idx].size, pos + self.exclusion + 1)
                working[pool_idx][lo:hi] = -np.inf
            for diff_val, pool_idx, pos in picks:
                _diffs, own, length = pools[pool_idx]
                instance_id, offset = own.locate(pos, length)
                shapelets.append(
                    Shapelet(
                        values=own.values[pos : pos + length].copy(),
                        label=label,
                        score=-diff_val,  # keep "smaller is better" ordering
                        source_instance=instance_id,
                        start=offset,
                    )
                )
        if not shapelets:
            raise ValidationError("BASE found no shapelets")
        return shapelets
