"""Bag-of-Patterns (Lin & Li 2009): the dictionary-based category.

Each series becomes a histogram over the SAX words of its sliding windows
("frequency of subsequences' repetition", as the paper's introduction
characterizes dictionary methods), with numerosity reduction (consecutive
identical words count once). Classification is 1NN over histogram
distance or a linear SVM on the normalized histograms.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.sax import sax_word
from repro.classify.scaler import StandardScaler
from repro.classify.svm import OneVsRestSVM
from repro.exceptions import NotFittedError, ValidationError
from repro.ts.series import Dataset
from repro.types import ParamsMixin


class BagOfPatterns(ParamsMixin):
    """BOP classifier.

    Parameters
    ----------
    window_ratio:
        Sliding-window length as a fraction of the series length.
    sax_segments, sax_alphabet:
        SAX word shape.
    numerosity_reduction:
        Collapse runs of identical consecutive words to one count.
    classifier:
        ``"svm"`` (linear SVM on normalized histograms) or ``"1nn"``
        (nearest neighbour under Euclidean histogram distance).
    """

    def __init__(
        self,
        window_ratio: float = 0.25,
        sax_segments: int = 6,
        sax_alphabet: int = 4,
        numerosity_reduction: bool = True,
        classifier: str = "svm",
        seed: int | None = 0,
    ) -> None:
        if not 0.0 < window_ratio <= 1.0:
            raise ValidationError("window_ratio must be in (0, 1]")
        if classifier not in ("svm", "1nn"):
            raise ValidationError(f"unknown classifier {classifier!r}")
        self.window_ratio = window_ratio
        self.sax_segments = sax_segments
        self.sax_alphabet = sax_alphabet
        self.numerosity_reduction = numerosity_reduction
        self.classifier = classifier
        self.seed = seed
        self.vocabulary_: dict[tuple, int] | None = None
        self._window: int = 0
        self._scaler: StandardScaler | None = None
        self._svm: OneVsRestSVM | None = None
        self._train_histograms: np.ndarray | None = None
        self._train_y: np.ndarray | None = None
        self._classes: np.ndarray | None = None
        self.discovery_seconds_: float = 0.0

    def _words_of(self, series: np.ndarray) -> list[tuple]:
        windows = np.lib.stride_tricks.sliding_window_view(series, self._window)
        words = [
            sax_word(w, self.sax_segments, self.sax_alphabet) for w in windows
        ]
        if self.numerosity_reduction:
            reduced = [words[0]]
            for word in words[1:]:
                if word != reduced[-1]:
                    reduced.append(word)
            return reduced
        return words

    def _histogram(self, series: np.ndarray) -> np.ndarray:
        out = np.zeros(len(self.vocabulary_))
        for word in self._words_of(series):
            index = self.vocabulary_.get(word)
            if index is not None:
                out[index] += 1.0
        total = out.sum()
        return out / total if total > 0 else out

    def fit_dataset(self, dataset: Dataset) -> "BagOfPatterns":
        """Build the vocabulary and train the chosen classifier."""
        self._window = max(4, int(round(self.window_ratio * dataset.series_length)))
        self._window = min(self._window, dataset.series_length)
        vocabulary: dict[tuple, int] = {}
        per_series_words = []
        for series in dataset.X:
            words = self._words_of(series) if vocabulary is not None else []
            per_series_words.append(words)
            for word in words:
                if word not in vocabulary:
                    vocabulary[word] = len(vocabulary)
        self.vocabulary_ = vocabulary
        histograms = np.zeros((dataset.n_series, len(vocabulary)))
        for i, words in enumerate(per_series_words):
            for word in words:
                histograms[i, vocabulary[word]] += 1.0
            total = histograms[i].sum()
            if total > 0:
                histograms[i] /= total
        self._train_histograms = histograms
        self._train_y = dataset.y
        self._classes = dataset.classes_
        if self.classifier == "svm":
            self._scaler = StandardScaler()
            scaled = self._scaler.fit_transform(histograms)
            self._svm = OneVsRestSVM(C=1.0, seed=self.seed)
            self._svm.fit(scaled, dataset.y)
        return self

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BagOfPatterns":
        """Fit on raw arrays."""
        return self.fit_dataset(Dataset(X=X, y=y))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels (original label values)."""
        if self.vocabulary_ is None or self._classes is None:
            raise NotFittedError("call fit before predict")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        histograms = np.vstack([self._histogram(row) for row in X])
        if self.classifier == "svm":
            internal = self._svm.predict(self._scaler.transform(histograms))
        else:
            internal = np.empty(histograms.shape[0], dtype=np.int64)
            for i, hist in enumerate(histograms):
                diffs = self._train_histograms - hist
                internal[i] = self._train_y[
                    np.argmin(np.einsum("ij,ij->i", diffs, diffs))
                ]
        return self._classes[internal]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy against original-valued labels."""
        from repro.classify.metrics import accuracy_score

        return accuracy_score(np.asarray(y, dtype=np.int64), self.predict(X))
