"""SD: scalable shapelet discovery via distance-based clustering.

Grabocka et al. (KAIS 2016) prune similar candidates by clustering them
and keeping only cluster prototypes. Here: sample subsequences per class,
k-means-cluster them per (class, length), score each centroid by exact
information gain, keep the best k per class, classify with the shared
transform stack.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ShapeletTransformClassifier
from repro.baselines.quality import best_information_gain
from repro.classify.kmeans import KMeans
from repro.exceptions import ValidationError
from repro.instanceprofile.sampling import resolve_lengths
from repro.kernels import distance_profile
from repro.ts.series import Dataset
from repro.types import Shapelet

DEFAULT_LENGTH_RATIOS: tuple[float, ...] = (0.2, 0.4)


class ScalableDiscovery(ShapeletTransformClassifier):
    """SD classifier.

    Parameters
    ----------
    k:
        Shapelets kept per class.
    n_clusters:
        Clusters (candidate prototypes) per (class, length).
    samples_per_class:
        Subsequences sampled per (class, length) before clustering.
    """

    def __init__(
        self,
        k: int = 5,
        n_clusters: int = 10,
        samples_per_class: int = 100,
        length_ratios: tuple[float, ...] = DEFAULT_LENGTH_RATIOS,
        svm_c: float = 1.0,
        seed: int | None = 0,
    ) -> None:
        super().__init__(svm_c=svm_c, seed=seed)
        if k < 1 or n_clusters < 1 or samples_per_class < 1:
            raise ValidationError("k, n_clusters, samples_per_class must be >= 1")
        self.k = k
        self.n_clusters = n_clusters
        self.samples_per_class = samples_per_class
        self.length_ratios = length_ratios

    def discover(self, dataset: Dataset) -> list[Shapelet]:
        """Cluster-prototype discovery."""
        if dataset.n_classes < 2:
            raise ValidationError("SD requires at least 2 classes")
        rng = np.random.default_rng(self.seed)
        lengths = resolve_lengths(dataset.series_length, self.length_ratios)
        shapelets: list[Shapelet] = []
        for label in range(dataset.n_classes):
            rows = dataset.class_indices(label)
            prototypes: list[np.ndarray] = []
            for length in lengths:
                if length > dataset.series_length:
                    continue
                samples = []
                for _ in range(self.samples_per_class):
                    row = int(rng.choice(rows))
                    start = int(rng.integers(dataset.series_length - length + 1))
                    samples.append(dataset.X[row, start : start + length])
                km = KMeans(
                    n_clusters=min(self.n_clusters, len(samples)), seed=rng
                ).fit(np.vstack(samples))
                prototypes.extend(km.centers_)
            scored: list[tuple[float, np.ndarray]] = []
            for proto in prototypes:
                distances = np.array(
                    [
                        distance_profile(proto, dataset.X[t]).min() / proto.size
                        for t in range(dataset.n_series)
                    ]
                )
                gain, _threshold = best_information_gain(distances, dataset.y)
                scored.append((gain, proto))
            scored.sort(key=lambda item: -item[0])
            for gain, proto in scored[: self.k]:
                shapelets.append(
                    Shapelet(values=proto.copy(), label=label, score=-gain)
                )
        if not shapelets:
            raise ValidationError("SD found no shapelets")
        return shapelets
