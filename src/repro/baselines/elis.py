"""ELIS: Efficient Learning of Interpretable Shapelets (Fang et al., ICDE 2018).

ELIS accelerates LTS-style shapelet *learning* by seeding the optimizer
with a small set of promising candidates instead of random/k-means
initialization: frequent, class-distinguishing patterns found via PAA/SAX
words are promoted to initial shapelets, then adjusted by the same
gradient-based learner. This implementation reuses the Fast-Shapelets SAX
scoring machinery for the seeding step and the LTS learner for the
adjustment step, matching the paper's two-phase structure.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.baselines.learning_shapelets import LearningShapelets
from repro.baselines.sax import sax_word
from repro.exceptions import ValidationError
from repro.ts.series import Dataset


class ELIS(LearningShapelets):
    """ELIS classifier: SAX-seeded shapelet learning.

    Parameters
    ----------
    k_per_class, length_ratio, alpha, lr, epochs, l2, seed:
        As in :class:`repro.baselines.learning_shapelets.LearningShapelets`.
    sax_segments, sax_alphabet:
        SAX word shape used by the seeding phase.
    stride_fraction:
        Enumeration stride of the seeding phase.
    """

    def __init__(
        self,
        k_per_class: int = 5,
        length_ratio: float = 0.2,
        alpha: float = 25.0,
        lr: float = 0.2,
        epochs: int = 300,
        l2: float = 1e-3,
        sax_segments: int = 8,
        sax_alphabet: int = 4,
        stride_fraction: float = 0.5,
        seed: int | None = 0,
    ) -> None:
        super().__init__(
            k_per_class=k_per_class,
            length_ratio=length_ratio,
            alpha=alpha,
            lr=lr,
            epochs=epochs,
            l2=l2,
            seed=seed,
        )
        if sax_segments < 2:
            raise ValidationError("sax_segments must be >= 2")
        if not 0.0 < stride_fraction <= 1.0:
            raise ValidationError("stride_fraction must be in (0, 1]")
        self.sax_segments = sax_segments
        self.sax_alphabet = sax_alphabet
        self.stride_fraction = stride_fraction

    def _init_shapelets(self, dataset: Dataset, length: int, rng) -> np.ndarray:
        """Seed with the most class-distinguishing SAX candidates.

        For every class, subsequences whose SAX word is frequent inside
        the class and rare outside it score highest; the top
        ``k_per_class`` become the initial shapelets (one block per class,
        preserving the LTS layout).
        """
        class_counts = np.bincount(dataset.y, minlength=dataset.n_classes).astype(
            np.float64
        )
        stride = max(1, int(round(self.stride_fraction * length)))
        entries: list[tuple[int, int, int]] = []  # (row, start, label)
        word_rows: dict[tuple, set[tuple[int, int]]] = defaultdict(set)
        words: list[tuple] = []
        for row_idx in range(dataset.n_series):
            series = dataset.X[row_idx]
            label = int(dataset.y[row_idx])
            for start in range(0, series.size - length + 1, stride):
                word = sax_word(
                    series[start : start + length],
                    self.sax_segments,
                    self.sax_alphabet,
                )
                entries.append((row_idx, start, label))
                words.append(word)
                word_rows[word].add((label, row_idx))
        seeds: list[np.ndarray] = []
        for label in range(dataset.n_classes):
            scored: list[tuple[float, int]] = []
            for idx, (row_idx, start, entry_label) in enumerate(entries):
                if entry_label != label:
                    continue
                per_class = np.zeros(dataset.n_classes)
                for other_label, _row in word_rows[words[idx]]:
                    per_class[other_label] += 1.0
                normalized = per_class / np.maximum(class_counts, 1.0)
                own = normalized[label]
                others = (normalized.sum() - own) / max(dataset.n_classes - 1, 1)
                scored.append((own - others, idx))
            scored.sort(key=lambda item: -item[0])
            picked = 0
            for _score, idx in scored:
                row_idx, start, _lbl = entries[idx]
                seeds.append(dataset.X[row_idx, start : start + length].copy())
                picked += 1
                if picked >= self.k_per_class:
                    break
            while picked < self.k_per_class:
                # Not enough distinct candidates: pad with random windows.
                row_idx = int(rng.choice(dataset.class_indices(label)))
                start = int(rng.integers(dataset.series_length - length + 1))
                seeds.append(dataset.X[row_idx, start : start + length].copy())
                picked += 1
        return np.vstack(seeds)
