"""Shared scaffolding for shapelet-discovery baselines.

Every runnable baseline produces a list of :class:`repro.types.Shapelet`
and then classifies through the identical downstream stack used by IPS —
shapelet transform, standardization, linear SVM — so accuracy differences
isolate the *discovery* quality, exactly the comparison the paper makes.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

import numpy as np

from repro.classify.scaler import StandardScaler
from repro.classify.svm import OneVsRestSVM
from repro.core.transform import ShapeletTransform
from repro.exceptions import NotFittedError
from repro.kernels import PerfCounters
from repro.ts.series import Dataset
from repro.types import ParamsMixin, Shapelet


class ShapeletTransformClassifier(ParamsMixin, ABC):
    """Template: discover shapelets, then transform + scale + linear SVM.

    Subclasses implement :meth:`discover`; everything else (timing,
    transform, SVM, label round-tripping) is shared.
    """

    def __init__(
        self, svm_c: float = 1.0, seed: int | None = 0, budget=None
    ) -> None:
        self.svm_c = svm_c
        self.seed = seed
        #: Optional :class:`repro.core.budget.Budget`; budget-aware
        #: baselines check it inside their discovery loops and set
        #: :attr:`completed_` to False on anytime truncation.
        self.budget = budget
        self.completed_: bool = True
        self.shapelets_: list[Shapelet] | None = None
        self.discovery_seconds_: float = float("nan")
        #: Live counters a subclass's ``discover`` can report kernel-cache
        #: work into (``SeriesCache(counters=self.perf_counters_)``).
        self.perf_counters_: PerfCounters = PerfCounters()
        #: Snapshot of :attr:`perf_counters_` taken at the end of
        #: ``fit_dataset`` — the baseline analogue of
        #: ``DiscoveryResult.extra["perf"]``.
        self.perf_: dict | None = None
        self._transform: ShapeletTransform | None = None
        self._scaler: StandardScaler | None = None
        self._svm: OneVsRestSVM | None = None
        self._dataset: Dataset | None = None

    @abstractmethod
    def discover(self, dataset: Dataset) -> list[Shapelet]:
        """Return the discovered shapelets for a training dataset."""

    def fit_dataset(self, dataset: Dataset) -> "ShapeletTransformClassifier":
        """Discover, then fit the shared transform + SVM stack."""
        counters = self.perf_counters_ = PerfCounters()
        start = time.perf_counter()
        with counters.phase("discovery"):
            shapelets = self.discover(dataset)
        self.discovery_seconds_ = time.perf_counter() - start
        self.shapelets_ = shapelets
        self._dataset = dataset
        self._transform = ShapeletTransform(shapelets)
        self._scaler = StandardScaler()
        with counters.phase("transform"):
            features = self._scaler.fit_transform(
                self._transform.transform(dataset.X)
            )
        self._svm = OneVsRestSVM(C=self.svm_c, seed=self.seed)
        with counters.phase("classify"):
            self._svm.fit(features, dataset.y)
        self.perf_ = counters.snapshot()
        return self

    def fit(self, X: np.ndarray, y: np.ndarray) -> "ShapeletTransformClassifier":
        """Fit on raw arrays."""
        return self.fit_dataset(Dataset(X=X, y=y))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels in the caller's original label values."""
        if self._svm is None or self._transform is None or self._dataset is None:
            raise NotFittedError("call fit before predict")
        features = self._scaler.transform(self._transform.transform(X))
        internal = self._svm.predict(features)
        return self._dataset.classes_[internal]

    @property
    def classes_(self) -> np.ndarray:
        """Original-valued class labels, sorted (Predictor contract)."""
        if self._dataset is None:
            raise NotFittedError("call fit before inspecting classes")
        return self._dataset.classes_

    def _inner_scores(self, X: np.ndarray, method: str) -> np.ndarray:
        if self._svm is None or self._transform is None or self._dataset is None:
            raise NotFittedError(f"call fit before {method}")
        features = self._scaler.transform(self._transform.transform(X))
        # The SVM is trained on internal labels 0..C-1 (positions of
        # classes_), so its columns already follow the original order.
        return np.asarray(getattr(self._svm, method)(features), dtype=np.float64)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Per-class probabilities, ``(M, C)`` in :attr:`classes_` order."""
        return self._inner_scores(X, "predict_proba")

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Per-class decision values, ``(M, C)`` in :attr:`classes_` order."""
        return self._inner_scores(X, "decision_function")

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy against original-valued labels."""
        from repro.classify.metrics import accuracy_score

        return accuracy_score(np.asarray(y, dtype=np.int64), self.predict(X))
