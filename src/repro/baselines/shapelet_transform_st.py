"""ST: the shapelet transform with information-gain full search.

Lines et al. (KDD 2012): enumerate candidates, score each by the
information gain of its order line against the full training set, select a
diverse top set, then classify on the transformed data. Enumeration is
capped by random sampling so the laptop-scale harness stays tractable; the
cap is recorded so benchmarks can report what was searched (DESIGN.md,
"No silent caps").
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ShapeletTransformClassifier
from repro.baselines.quality import best_information_gain
from repro.exceptions import ValidationError
from repro.instanceprofile.sampling import resolve_lengths
from repro.kernels import SeriesCache, batch_min_distance, subsequence_distance
from repro.ts.series import Dataset
from repro.types import Shapelet

DEFAULT_LENGTH_RATIOS: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5)


class ShapeletTransformST(ShapeletTransformClassifier):
    """ST classifier.

    Parameters
    ----------
    k:
        Shapelets kept per class.
    max_candidates:
        Cap on the number of sampled candidates (the classic ST enumerates
        all O(M N^2) subsequences; the cap keeps the harness tractable).
    similarity_reject:
        Candidates closer than this Def.-4 distance to an already-selected
        shapelet are rejected (self-similarity removal).
    """

    def __init__(
        self,
        k: int = 5,
        max_candidates: int = 300,
        length_ratios: tuple[float, ...] = DEFAULT_LENGTH_RATIOS,
        similarity_reject: float = 1e-3,
        svm_c: float = 1.0,
        seed: int | None = 0,
    ) -> None:
        super().__init__(svm_c=svm_c, seed=seed)
        if k < 1 or max_candidates < 1:
            raise ValidationError("k and max_candidates must be >= 1")
        self.k = k
        self.max_candidates = max_candidates
        self.length_ratios = length_ratios
        self.similarity_reject = similarity_reject
        self.n_candidates_searched_: int = 0

    def discover(self, dataset: Dataset) -> list[Shapelet]:
        """Information-gain search over sampled candidates."""
        if dataset.n_classes < 2:
            raise ValidationError("ST requires at least 2 classes")
        rng = np.random.default_rng(self.seed)
        lengths = resolve_lengths(dataset.series_length, self.length_ratios)

        candidates: list[tuple[np.ndarray, int, int, int]] = []
        for _ in range(self.max_candidates):
            row = int(rng.integers(dataset.n_series))
            length = int(rng.choice(lengths))
            start = int(rng.integers(dataset.series_length - length + 1))
            candidates.append(
                (
                    dataset.X[row, start : start + length].copy(),
                    int(dataset.y[row]),
                    row,
                    start,
                )
            )
        self.n_candidates_searched_ = len(candidates)

        # One batched kernel pass scores every candidate against every
        # series (grouped by candidate length internally); the per-fit
        # cache computes the dataset matrix's spectra once per length
        # instead of once per (candidate, series) pair. The historical
        # ``distance_profile(values, X[t]).min() / len`` loop iterated
        # fresh ``X[t]`` views, which an identity-keyed cache can never
        # hit. Bit-identical to that loop by the engine's contract.
        fit_cache = SeriesCache()
        min_dists = batch_min_distance(
            [values for values, _label, _row, _start in candidates],
            dataset.X,
            cache=fit_cache,
        )
        scored: list[tuple[float, int]] = []
        for idx in range(len(candidates)):
            gain, _threshold = best_information_gain(min_dists[:, idx], dataset.y)
            scored.append((gain, idx))
        scored.sort(key=lambda item: -item[0])

        per_class_quota = {label: self.k for label in range(dataset.n_classes)}
        shapelets: list[Shapelet] = []
        for gain, idx in scored:
            values, label, row, start = candidates[idx]
            if per_class_quota[label] <= 0:
                continue
            duplicate = any(
                s.length == values.size
                and subsequence_distance(values, s.values, cache=fit_cache)
                < self.similarity_reject
                for s in shapelets
            )
            if duplicate:
                continue
            shapelets.append(
                Shapelet(
                    values=values,
                    label=label,
                    score=-gain,
                    source_instance=row,
                    start=start,
                )
            )
            per_class_quota[label] -= 1
            if all(q <= 0 for q in per_class_quota.values()):
                break
        if not shapelets:
            raise ValidationError("ST found no shapelets")
        return shapelets
