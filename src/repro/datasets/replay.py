"""Chunked replay: feed stored series to the streaming stack as streams.

The streaming subsystem consumes unbounded chunk sequences; the datasets
subpackage produces fixed-length arrays. :func:`iter_chunks` bridges the
two — it replays one series as a deterministic sequence of chunks (fixed
size, or random sizes from a seeded RNG, including size-1 chunks), and
:func:`replay_dataset` drives a whole dataset through a per-series
consumer, which is how the CLI, the streaming benchmark, and the
domain-generator test suites (ECG beats, sensor traces from
:mod:`repro.datasets.special`) exercise early classification.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.exceptions import ValidationError


def iter_chunks(
    series,
    chunk_size: int = 32,
    *,
    jitter_seed: int | np.random.Generator | None = None,
) -> Iterator[np.ndarray]:
    """Yield ``series`` as consecutive chunks covering every sample once.

    Parameters
    ----------
    series:
        1-D array to replay.
    chunk_size:
        Chunk length; the final chunk carries the remainder. With
        ``jitter_seed`` set this becomes the *maximum* size.
    jitter_seed:
        When given, each chunk's size is drawn uniformly from
        ``[1, chunk_size]`` by a seeded RNG — deterministic per seed, and
        the way the property suite exercises ragged (including size-1)
        chunkings.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ValidationError(f"series must be 1-D, got ndim={series.ndim}")
    if chunk_size < 1:
        raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
    rng = None
    if jitter_seed is not None:
        rng = (
            jitter_seed
            if isinstance(jitter_seed, np.random.Generator)
            else np.random.default_rng(jitter_seed)
        )
    pos = 0
    while pos < series.size:
        step = chunk_size if rng is None else int(rng.integers(1, chunk_size + 1))
        yield series[pos : pos + step]
        pos += step


def replay_dataset(
    X,
    consume: Callable[[int, Iterator[np.ndarray]], object],
    chunk_size: int = 32,
    *,
    jitter_seed: int | None = None,
) -> list:
    """Replay every row of ``X`` as a chunk stream through ``consume``.

    ``consume(row_index, chunks)`` receives the row's chunk iterator and
    its return values are collected in row order. With ``jitter_seed``
    set, row ``i`` streams under seed ``jitter_seed + i`` so chunkings
    differ across rows but are reproducible across runs.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValidationError(f"X must be 2-D (M, N), got ndim={X.ndim}")
    results = []
    for i, row in enumerate(X):
        seed = None if jitter_seed is None else jitter_seed + i
        results.append(consume(i, iter_chunks(row, chunk_size, jitter_seed=seed)))
    return results


__all__ = ["iter_chunks", "replay_dataset"]
