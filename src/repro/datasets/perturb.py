"""Perturbation utilities for robustness studies.

Deployment-grade shapelet systems face sensor noise, spikes, dropouts,
baseline drift, and timing jitter; these functions inject each effect into
an ``(M, N)`` series matrix so robustness curves (accuracy vs severity)
can be generated — see ``examples/robustness_noise.py`` and the
``bench_ablation_robustness`` harness.

All functions are pure (the input is never mutated) and deterministic
given a seed.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.ts.preprocessing import linear_interpolate_resample


def _check(X: np.ndarray) -> np.ndarray:
    arr = np.asarray(X, dtype=np.float64)
    if arr.ndim != 2 or arr.size == 0:
        raise ValidationError("perturbations expect a non-empty (M, N) matrix")
    return arr


def _rng_of(seed: int | np.random.Generator | None) -> np.random.Generator:
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


def add_gaussian_noise(
    X: np.ndarray, scale: float, seed: int | np.random.Generator | None = 0
) -> np.ndarray:
    """Additive white Gaussian noise with standard deviation ``scale``."""
    arr = _check(X)
    if scale < 0:
        raise ValidationError("scale must be >= 0")
    rng = _rng_of(seed)
    return arr + rng.normal(scale=scale, size=arr.shape)


def add_spikes(
    X: np.ndarray,
    rate: float = 0.01,
    magnitude: float = 5.0,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Impulse noise: each sample is replaced by a spike with prob ``rate``.

    Spike amplitude is ``magnitude`` times the per-series std, with random
    sign — the classic electrode-pop / packet-glitch artefact.
    """
    arr = _check(X)
    if not 0.0 <= rate <= 1.0:
        raise ValidationError("rate must be in [0, 1]")
    rng = _rng_of(seed)
    out = arr.copy()
    stds = arr.std(axis=1, keepdims=True)
    mask = rng.random(arr.shape) < rate
    signs = rng.choice([-1.0, 1.0], size=arr.shape)
    out[mask] = (arr + signs * magnitude * stds)[mask]
    return out


def add_dropout(
    X: np.ndarray,
    rate: float = 0.05,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Missing samples, filled by linear interpolation.

    Each sample independently "drops" with probability ``rate``; dropped
    runs are reconstructed from the surviving neighbours (the standard
    gap-filling preprocessing), so the output stays NaN-free — but local
    shape detail inside the gaps is lost.
    """
    arr = _check(X)
    if not 0.0 <= rate < 1.0:
        raise ValidationError("rate must be in [0, 1)")
    rng = _rng_of(seed)
    out = arr.copy()
    n = arr.shape[1]
    positions = np.arange(n)
    for i in range(arr.shape[0]):
        dropped = rng.random(n) < rate
        dropped[0] = dropped[-1] = False  # keep anchors for interpolation
        if not np.any(dropped):
            continue
        keep = ~dropped
        out[i] = np.interp(positions, positions[keep], arr[i, keep])
    return out


def add_baseline_drift(
    X: np.ndarray,
    magnitude: float = 1.0,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Slow additive wander: a random low-frequency sinusoid per series."""
    arr = _check(X)
    if magnitude < 0:
        raise ValidationError("magnitude must be >= 0")
    rng = _rng_of(seed)
    n = arr.shape[1]
    t = np.linspace(0.0, 1.0, n)
    out = arr.copy()
    for i in range(arr.shape[0]):
        freq = rng.uniform(0.5, 2.0)
        phase = rng.uniform(0.0, 2.0 * np.pi)
        out[i] = arr[i] + magnitude * np.sin(2.0 * np.pi * freq * t + phase)
    return out


def mask_missing(
    X: np.ndarray,
    rate: float = 0.1,
    block: int = 1,
    fill: str = "interpolate",
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Missing-value masking per the UCR Archive's perturbed scenarios.

    Unlike :func:`add_dropout` (isolated samples, always interpolated),
    this masks *contiguous blocks* — the sensor-outage / transmission-gap
    pattern the archive paper recommends testing against — and lets the
    caller choose what the gaps become:

    ``"interpolate"``
        Linear reconstruction from surviving neighbours (finite output,
        safe for every pipeline entry point).
    ``"nan"``
        Honest NaN gaps, for exercising the ``repro.validation`` repair
        path (strict mode will refuse, repair mode will patch).
    ``"zero"``
        Gaps zeroed in place (the naive imputation many deployments use).

    ``rate`` is the expected fraction of masked samples; each series
    draws ``round(rate * N / block)`` block start positions. The first
    and last samples are kept as interpolation anchors.
    """
    arr = _check(X)
    if not 0.0 <= rate < 1.0:
        raise ValidationError("rate must be in [0, 1)")
    if block < 1:
        raise ValidationError("block must be >= 1")
    if fill not in ("interpolate", "nan", "zero"):
        raise ValidationError("fill must be 'interpolate', 'nan', or 'zero'")
    rng = _rng_of(seed)
    out = arr.copy()
    n = arr.shape[1]
    positions = np.arange(n)
    n_blocks = int(round(rate * n / block))
    for i in range(arr.shape[0]):
        mask = np.zeros(n, dtype=bool)
        if n_blocks > 0:
            starts = rng.integers(0, n, size=n_blocks)
            for start in starts:
                mask[start : start + block] = True
        mask[0] = mask[-1] = False  # keep anchors
        if not np.any(mask):
            continue
        if fill == "interpolate":
            keep = ~mask
            out[i] = np.interp(positions, positions[keep], arr[i, keep])
        elif fill == "nan":
            out[i, mask] = np.nan
        else:
            out[i, mask] = 0.0
    return out


def add_label_noise(
    y: np.ndarray,
    rate: float = 0.1,
    n_classes: int | None = None,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Symmetric label noise: each label flips with probability ``rate``.

    A flipped label is redrawn uniformly from the *other* observed
    classes (or ``0..n_classes-1`` when given), so a flip always changes
    the label. Pure and seeded like every other perturbation; operates
    on the label vector rather than the value matrix, which is why the
    campaign registers it as a train-side scenario.
    """
    labels = np.asarray(y)
    if labels.ndim != 1 or labels.size == 0:
        raise ValidationError("label noise expects a non-empty 1-D label vector")
    if not 0.0 <= rate <= 1.0:
        raise ValidationError("rate must be in [0, 1]")
    classes = (
        np.arange(n_classes) if n_classes is not None else np.unique(labels)
    )
    if classes.size < 2:
        raise ValidationError("label noise needs at least 2 classes")
    rng = _rng_of(seed)
    out = labels.copy()
    flip = rng.random(labels.size) < rate
    for i in np.flatnonzero(flip):
        others = classes[classes != labels[i]]
        out[i] = rng.choice(others)
    return out


def time_warp(
    X: np.ndarray,
    max_warp: float = 0.1,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Global speed jitter: resample each series by a random factor.

    Each series is stretched/compressed by up to ``max_warp`` and brought
    back to the original length, simulating clock drift between sensors.
    """
    arr = _check(X)
    if not 0.0 <= max_warp < 1.0:
        raise ValidationError("max_warp must be in [0, 1)")
    rng = _rng_of(seed)
    n = arr.shape[1]
    out = np.empty_like(arr)
    for i in range(arr.shape[0]):
        factor = 1.0 + rng.uniform(-max_warp, max_warp)
        stretched = linear_interpolate_resample(arr[i], max(4, int(round(n * factor))))
        out[i] = linear_interpolate_resample(stretched, n)
    return out
