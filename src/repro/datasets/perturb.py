"""Perturbation utilities for robustness studies.

Deployment-grade shapelet systems face sensor noise, spikes, dropouts,
baseline drift, and timing jitter; these functions inject each effect into
an ``(M, N)`` series matrix so robustness curves (accuracy vs severity)
can be generated — see ``examples/robustness_noise.py`` and the
``bench_ablation_robustness`` harness.

All functions are pure (the input is never mutated) and deterministic
given a seed.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.ts.preprocessing import linear_interpolate_resample


def _check(X: np.ndarray) -> np.ndarray:
    arr = np.asarray(X, dtype=np.float64)
    if arr.ndim != 2 or arr.size == 0:
        raise ValidationError("perturbations expect a non-empty (M, N) matrix")
    return arr


def _rng_of(seed: int | np.random.Generator | None) -> np.random.Generator:
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


def add_gaussian_noise(
    X: np.ndarray, scale: float, seed: int | np.random.Generator | None = 0
) -> np.ndarray:
    """Additive white Gaussian noise with standard deviation ``scale``."""
    arr = _check(X)
    if scale < 0:
        raise ValidationError("scale must be >= 0")
    rng = _rng_of(seed)
    return arr + rng.normal(scale=scale, size=arr.shape)


def add_spikes(
    X: np.ndarray,
    rate: float = 0.01,
    magnitude: float = 5.0,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Impulse noise: each sample is replaced by a spike with prob ``rate``.

    Spike amplitude is ``magnitude`` times the per-series std, with random
    sign — the classic electrode-pop / packet-glitch artefact.
    """
    arr = _check(X)
    if not 0.0 <= rate <= 1.0:
        raise ValidationError("rate must be in [0, 1]")
    rng = _rng_of(seed)
    out = arr.copy()
    stds = arr.std(axis=1, keepdims=True)
    mask = rng.random(arr.shape) < rate
    signs = rng.choice([-1.0, 1.0], size=arr.shape)
    out[mask] = (arr + signs * magnitude * stds)[mask]
    return out


def add_dropout(
    X: np.ndarray,
    rate: float = 0.05,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Missing samples, filled by linear interpolation.

    Each sample independently "drops" with probability ``rate``; dropped
    runs are reconstructed from the surviving neighbours (the standard
    gap-filling preprocessing), so the output stays NaN-free — but local
    shape detail inside the gaps is lost.
    """
    arr = _check(X)
    if not 0.0 <= rate < 1.0:
        raise ValidationError("rate must be in [0, 1)")
    rng = _rng_of(seed)
    out = arr.copy()
    n = arr.shape[1]
    positions = np.arange(n)
    for i in range(arr.shape[0]):
        dropped = rng.random(n) < rate
        dropped[0] = dropped[-1] = False  # keep anchors for interpolation
        if not np.any(dropped):
            continue
        keep = ~dropped
        out[i] = np.interp(positions, positions[keep], arr[i, keep])
    return out


def add_baseline_drift(
    X: np.ndarray,
    magnitude: float = 1.0,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Slow additive wander: a random low-frequency sinusoid per series."""
    arr = _check(X)
    if magnitude < 0:
        raise ValidationError("magnitude must be >= 0")
    rng = _rng_of(seed)
    n = arr.shape[1]
    t = np.linspace(0.0, 1.0, n)
    out = arr.copy()
    for i in range(arr.shape[0]):
        freq = rng.uniform(0.5, 2.0)
        phase = rng.uniform(0.0, 2.0 * np.pi)
        out[i] = arr[i] + magnitude * np.sin(2.0 * np.pi * freq * t + phase)
    return out


def time_warp(
    X: np.ndarray,
    max_warp: float = 0.1,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Global speed jitter: resample each series by a random factor.

    Each series is stretched/compressed by up to ``max_warp`` and brought
    back to the original length, simulating clock drift between sensors.
    """
    arr = _check(X)
    if not 0.0 <= max_warp < 1.0:
        raise ValidationError("max_warp must be in [0, 1)")
    rng = _rng_of(seed)
    n = arr.shape[1]
    out = np.empty_like(arr)
    for i in range(arr.shape[0]):
        factor = 1.0 + rng.uniform(-max_warp, max_warp)
        stretched = linear_interpolate_resample(arr[i], max(4, int(round(n * factor))))
        out[i] = linear_interpolate_resample(stretched, n)
    return out
