"""Synthetic UCR-archive substitute.

The paper evaluates on 46 UCR datasets (plus MoteStrain in Table II). The
archive is public but this environment has no network access, so this
subpackage substitutes deterministic generators that preserve what shapelet
methods are sensitive to: localized class-specific subsequences embedded in
noisy backgrounds, at the true UCR class counts / sizes / lengths (see
DESIGN.md, substitution table).

* :mod:`repro.datasets.registry` — the true metadata of every evaluated
  dataset (classes, train/test sizes, series length, type) and its
  generator binding;
* :mod:`repro.datasets.generators` — the planted-shapelet generator with a
  parametric pattern library, amplitude jitter, time warping, distractor
  patterns, and AR(1) backgrounds;
* :mod:`repro.datasets.special` — exact generative implementations of the
  synthetic UCR datasets (CBF, TwoPatterns, SyntheticControl) and
  domain-shaped generators (ItalyPowerDemand daily load curves, ECG beats,
  GunPoint motion);
* :mod:`repro.datasets.loader` — ``load_dataset(name)`` with size caps for
  laptop-scale benchmarking.
"""

from repro.datasets.generators import make_multivariate_planted, make_planted_dataset
from repro.datasets.io import load_ucr_directory, read_ucr_file, write_ucr_file
from repro.datasets.loader import TrainTestData, dataset_names, load_dataset
from repro.datasets.registry import REGISTRY, DatasetProfile
from repro.datasets.replay import iter_chunks, replay_dataset

__all__ = [
    "REGISTRY",
    "DatasetProfile",
    "TrainTestData",
    "dataset_names",
    "iter_chunks",
    "load_dataset",
    "load_ucr_directory",
    "make_multivariate_planted",
    "make_planted_dataset",
    "read_ucr_file",
    "replay_dataset",
    "write_ucr_file",
]
