"""Exact / domain-shaped generators for specific UCR datasets.

Three of the paper's datasets are themselves synthetic with published
generative definitions, implemented here exactly:

* **CBF** (cylinder-bell-funnel, Saito 1994);
* **TwoPatterns** (up-up / up-down / down-up / down-down step pairs);
* **SyntheticControl** (six control-chart regimes, Alcock & Manolopoulos).

The rest are domain-shaped: ItalyPowerDemand-like daily load curves
(winter morning-heating bump vs summer — the paper's Fig. 13 case study),
ECG-like beats (QRS morphology differences), and GunPoint-like motion
profiles (draw/point/return with vs without the holster dip).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.ts.preprocessing import linear_interpolate_resample
from repro.ts.series import Dataset


def _rng_of(seed: int | np.random.Generator | None) -> np.random.Generator:
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


def _labels(n_instances: int, n_classes: int, rng: np.random.Generator) -> np.ndarray:
    labels = np.arange(n_instances) % n_classes
    rng.shuffle(labels)
    return labels


def make_cbf(
    n_instances: int, length: int = 128, seed: int | np.random.Generator | None = 0
) -> Dataset:
    """Cylinder-Bell-Funnel: the classic 3-class synthetic dataset.

    Each instance is ``(6 + eta) * chi_[a, b](t) * shape(t) + noise`` with a
    random support ``[a, b]``; the shape is flat (cylinder), rising ramp
    (bell) or falling ramp (funnel).
    """
    if n_instances < 3:
        raise ValidationError("CBF needs at least 3 instances")
    rng = _rng_of(seed)
    labels = _labels(n_instances, 3, rng)
    X = np.empty((n_instances, length))
    t = np.arange(length)
    for i, label in enumerate(labels):
        a = int(rng.integers(length // 8, length // 4))
        b = int(rng.integers(length // 2, 7 * length // 8))
        eta = rng.standard_normal()
        support = ((t >= a) & (t <= b)).astype(np.float64)
        if label == 0:  # cylinder
            shape = support
        elif label == 1:  # bell: ramp up over the support
            ramp = np.clip((t - a) / max(b - a, 1), 0.0, 1.0)
            shape = support * ramp
        else:  # funnel: ramp down over the support
            ramp = np.clip((b - t) / max(b - a, 1), 0.0, 1.0)
            shape = support * ramp
        X[i] = (6.0 + eta) * shape + rng.standard_normal(length)
    return Dataset(X=X, y=labels, name="CBF")


def make_two_patterns(
    n_instances: int, length: int = 128, seed: int | np.random.Generator | None = 0
) -> Dataset:
    """TwoPatterns: four classes given by the order of two step events.

    Each instance contains an "up" step (-1 then +1) and/or "down" step
    (+1 then -1) at random positions; the class is the (first, second)
    event-type pair: UU / UD / DU / DD.
    """
    if n_instances < 4:
        raise ValidationError("TwoPatterns needs at least 4 instances")
    rng = _rng_of(seed)
    labels = _labels(n_instances, 4, rng)
    step_len = max(4, length // 10)
    X = rng.standard_normal((n_instances, length)) * 0.3
    for i, label in enumerate(labels):
        first_up = label in (0, 1)
        second_up = label in (0, 2)
        p1 = int(rng.integers(0, length // 2 - step_len))
        p2 = int(rng.integers(length // 2, length - 2 * step_len))
        for pos, is_up in ((p1, first_up), (p2, second_up)):
            half = step_len
            lo_val, hi_val = (-1.0, 1.0) if is_up else (1.0, -1.0)
            X[i, pos : pos + half] += 5.0 * lo_val
            X[i, pos + half : pos + 2 * half] += 5.0 * hi_val
    return Dataset(X=X, y=labels, name="TwoPatterns")


def make_synthetic_control(
    n_instances: int, length: int = 60, seed: int | np.random.Generator | None = 0
) -> Dataset:
    """SyntheticControl: six control-chart regimes.

    Classes: normal, cyclic, increasing trend, decreasing trend, upward
    shift, downward shift — the Alcock & Manolopoulos formulas.
    """
    if n_instances < 6:
        raise ValidationError("SyntheticControl needs at least 6 instances")
    rng = _rng_of(seed)
    labels = _labels(n_instances, 6, rng)
    t = np.arange(length, dtype=np.float64)
    X = np.empty((n_instances, length))
    for i, label in enumerate(labels):
        base = 30.0 + 2.0 * rng.standard_normal(length)
        if label == 1:  # cyclic
            amplitude = rng.uniform(10.0, 15.0)
            period = rng.uniform(10.0, 15.0)
            base += amplitude * np.sin(2.0 * np.pi * t / period)
        elif label == 2:  # increasing trend
            base += rng.uniform(0.2, 0.5) * t
        elif label == 3:  # decreasing trend
            base -= rng.uniform(0.2, 0.5) * t
        elif label == 4:  # upward shift
            shift_at = int(rng.integers(length // 3, 2 * length // 3))
            base[shift_at:] += rng.uniform(7.5, 20.0)
        elif label == 5:  # downward shift
            shift_at = int(rng.integers(length // 3, 2 * length // 3))
            base[shift_at:] -= rng.uniform(7.5, 20.0)
        X[i] = base
    return Dataset(X=X, y=labels, name="SyntheticControl")


def make_italy_power(
    n_instances: int, length: int = 24, seed: int | np.random.Generator | None = 0
) -> Dataset:
    """ItalyPowerDemand-like daily electricity load curves.

    Class 1 = summer, class 2 = winter. Both share the base daily shape
    (night trough, working-hours plateau, evening peak); winter adds the
    *morning heating bump* around 7-10h that the paper's Fig. 13 shapelets
    latch onto.
    """
    if n_instances < 2:
        raise ValidationError("ItalyPowerDemand needs at least 2 instances")
    rng = _rng_of(seed)
    labels = _labels(n_instances, 2, rng)
    hours = np.linspace(0.0, 24.0, length, endpoint=False)
    # Shared daily profile.
    base = (
        0.6
        + 0.5 / (1.0 + np.exp(-(hours - 6.5)))  # morning ramp-up
        + 0.25 * np.exp(-((hours - 19.0) ** 2) / 4.0)  # evening peak
        - 0.35 * np.exp(-((hours - 3.0) ** 2) / 6.0)  # night trough
    )
    heating = np.exp(-((hours - 8.5) ** 2) / 2.0)  # winter morning bump
    X = np.empty((n_instances, length))
    for i, label in enumerate(labels):
        level = 1.0 + 0.1 * rng.standard_normal()
        curve = base * level
        if label == 1:  # winter
            curve = curve + (0.55 + 0.1 * rng.standard_normal()) * heating
        else:  # summer: slightly stronger afternoon (cooling) demand
            curve = curve + 0.15 * np.exp(-((hours - 15.0) ** 2) / 8.0)
        X[i] = curve + 0.05 * rng.standard_normal(length)
    return Dataset(X=X, y=labels, name="ItalyPowerDemand")


def _ecg_beat(length: int, rng: np.random.Generator, wide_qrs: bool, st_drop: float) -> np.ndarray:
    """One synthetic heartbeat: P wave, QRS complex, T wave."""
    t = np.linspace(0.0, 1.0, length)
    qrs_width = 0.035 if not wide_qrs else 0.08
    beat = (
        0.15 * np.exp(-((t - 0.2) ** 2) / (2 * 0.02**2))  # P
        - 0.2 * np.exp(-((t - 0.36) ** 2) / (2 * 0.012**2))  # Q
        + 1.0 * np.exp(-((t - 0.4) ** 2) / (2 * qrs_width**2))  # R
        - 0.25 * np.exp(-((t - 0.45) ** 2) / (2 * 0.015**2))  # S
        + 0.3 * np.exp(-((t - 0.7) ** 2) / (2 * 0.04**2))  # T
    )
    if st_drop:
        st_mask = (t > 0.48) & (t < 0.62)
        beat[st_mask] -= st_drop
    beat += 0.03 * rng.standard_normal(length)
    return beat


def make_ecg(
    n_instances: int,
    length: int = 96,
    n_classes: int = 2,
    seed: int | np.random.Generator | None = 0,
    name: str = "ECG",
) -> Dataset:
    """ECG-like beats: normal vs abnormal morphology classes.

    Class 0 = normal narrow QRS; class 1 = wide QRS; further classes mix
    ST depression and T-wave changes (for ECG5000's 5 classes).
    """
    if n_classes < 2 or n_classes > 5:
        raise ValidationError("make_ecg supports 2-5 classes")
    rng = _rng_of(seed)
    labels = _labels(n_instances, n_classes, rng)
    X = np.empty((n_instances, length))
    for i, label in enumerate(labels):
        wide = label in (1, 3)
        st_drop = 0.2 if label in (2, 3) else (0.35 if label == 4 else 0.0)
        beat = _ecg_beat(length, rng, wide_qrs=wide, st_drop=st_drop)
        # Small baseline wander + amplitude variation.
        wander = 0.05 * np.sin(2.0 * np.pi * rng.uniform(0.5, 1.5) * np.linspace(0, 1, length))
        X[i] = (1.0 + 0.1 * rng.standard_normal()) * beat + wander
    return Dataset(X=X, y=labels, name=name)


def make_gun_point(
    n_instances: int, length: int = 150, seed: int | np.random.Generator | None = 0
) -> Dataset:
    """GunPoint-like hand-motion profiles.

    Both classes raise the hand, hold, and lower it; the Gun class adds the
    characteristic dip at the start/end from drawing and re-holstering.
    """
    if n_instances < 2:
        raise ValidationError("GunPoint needs at least 2 instances")
    rng = _rng_of(seed)
    labels = _labels(n_instances, 2, rng)
    t = np.linspace(0.0, 1.0, length)
    X = np.empty((n_instances, length))
    for i, label in enumerate(labels):
        rise = 1.0 / (1.0 + np.exp(-(t - 0.25) * 25.0))
        fall = 1.0 / (1.0 + np.exp((t - 0.75) * 25.0))
        motion = rise * fall
        if label == 0:  # gun: holster dip before the draw and after return
            motion -= 0.25 * np.exp(-((t - 0.13) ** 2) / (2 * 0.03**2))
            motion -= 0.25 * np.exp(-((t - 0.87) ** 2) / (2 * 0.03**2))
        speed = rng.uniform(0.9, 1.1)
        warped = linear_interpolate_resample(motion, max(8, int(length * speed)))
        warped = linear_interpolate_resample(warped, length)
        X[i] = warped + 0.03 * rng.standard_normal(length)
    return Dataset(X=X, y=labels, name="GunPoint")
