"""Read and write datasets in the UCR archive's on-disk format.

The UCR 2018 archive distributes each dataset as ``<Name>_TRAIN.tsv`` and
``<Name>_TEST.tsv``: one instance per line, the class label first, then
the N values, tab-separated (older releases used commas; both are
handled). With these functions the library runs against the *real*
archive whenever the files are available — the synthetic registry is only
the offline fallback (DESIGN.md §1).
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.datasets.loader import TrainTestData
from repro.datasets.registry import REGISTRY, DatasetProfile
from repro.exceptions import ValidationError
from repro.ts.series import Dataset


def read_ucr_file(
    path: str | pathlib.Path, name: str = "", repair: bool = False
) -> Dataset:
    """Parse one UCR TSV/CSV file into a :class:`Dataset`.

    Labels may be arbitrary integers (including negatives, as in some UCR
    sets); they are remapped by the :class:`Dataset` constructor.

    Parsed rows go through :func:`repro.validation.validate_dataset`:
    with ``repair=False`` (default) ragged lengths and NaN/inf cells
    raise a :class:`~repro.exceptions.ValidationError` naming the
    offending row indices; with ``repair=True`` the deterministic repair
    policies run instead (pad/truncate to the majority length,
    interpolate gaps, drop rows with no finite values).
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise ValidationError(f"no such file: {path}")
    labels: list[int] = []
    rows: list[np.ndarray] = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            delimiter = "\t" if "\t" in line else ","
            parts = [p for p in line.split(delimiter) if p != ""]
            if len(parts) < 2:
                raise ValidationError(
                    f"{path}:{line_no}: expected label + values, got {len(parts)} fields"
                )
            try:
                label = float(parts[0])
                values = np.array([float(p) for p in parts[1:]])
            except ValueError as exc:
                raise ValidationError(f"{path}:{line_no}: {exc}") from exc
            if label != int(label):
                raise ValidationError(
                    f"{path}:{line_no}: non-integer class label {label}"
                )
            labels.append(int(label))
            rows.append(values)
    if not rows:
        raise ValidationError(f"{path}: no instances found")
    from repro.validation import validate_dataset

    try:
        validated = validate_dataset(
            rows,
            labels,
            mode="repair" if repair else "strict",
            min_series_length=1,  # fit-time validation owns the length contract
            name=name or path.stem,
        )
    except ValidationError as exc:
        raise ValidationError(f"{path}: {exc}") from exc
    return validated.dataset


def write_ucr_file(dataset: Dataset, path: str | pathlib.Path) -> None:
    """Write a :class:`Dataset` in UCR TSV format (original labels)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        for row, internal in zip(dataset.X, dataset.y):
            label = dataset.original_label(int(internal))
            values = "\t".join(f"{v:.10g}" for v in row)
            handle.write(f"{label}\t{values}\n")


def load_ucr_directory(
    root: str | pathlib.Path, name: str, repair: bool = False
) -> TrainTestData:
    """Load ``<root>/<name>/<name>_TRAIN.tsv`` and ``..._TEST.tsv``.

    Matches the real archive's directory layout. The registry profile is
    attached when the name is known (for metadata display); unknown names
    get a synthesized profile from the files themselves. ``repair``
    forwards to :func:`read_ucr_file` (apply repair policies instead of
    raising on contract violations).
    """
    root = pathlib.Path(root)
    train = read_ucr_file(root / name / f"{name}_TRAIN.tsv", name=name, repair=repair)
    test = read_ucr_file(root / name / f"{name}_TEST.tsv", name=name, repair=repair)
    if train.series_length != test.series_length:
        raise ValidationError(
            f"{name}: train length {train.series_length} != test length "
            f"{test.series_length}"
        )
    profile = REGISTRY.get(name) or DatasetProfile(
        name=name,
        n_classes=train.n_classes,
        n_train=train.n_series,
        n_test=test.n_series,
        length=train.series_length,
        category="Unknown",
        generator="file",
    )
    return TrainTestData(train=train, test=test, profile=profile)
