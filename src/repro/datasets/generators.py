"""Planted-shapelet dataset generator.

The generator embeds one or two class-specific *prototype patterns* into
noisy backgrounds, with the distortions real data exhibits:

* amplitude jitter (multiplicative, per instance);
* time warping (the planted pattern is resampled to +-``warp`` of its
  nominal length);
* random placement (the pattern can appear anywhere, so methods that
  assume aligned features — unlike shapelets — are penalized);
* distractor patterns shared across classes (so trivial variance-based
  classifiers do not win);
* AR(1)-smoothed Gaussian background noise.

Prototype shapes come from a parametric library (bump, sine burst, chirp,
sawtooth, step, double bump, damped oscillation, triangle) assigned to
classes deterministically from the seed, so class i and class j always get
distinct shapes.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.ts.preprocessing import linear_interpolate_resample
from repro.ts.series import Dataset


def _bump(n: int) -> np.ndarray:
    x = np.linspace(-3.0, 3.0, n)
    return np.exp(-x * x)


def _sine_burst(n: int) -> np.ndarray:
    x = np.linspace(0.0, 2.0 * np.pi, n)
    return np.sin(2.0 * x) * np.hanning(n)


def _chirp(n: int) -> np.ndarray:
    x = np.linspace(0.0, 1.0, n)
    return np.sin(2.0 * np.pi * (1.0 + 4.0 * x) * x) * np.hanning(n)


def _sawtooth(n: int) -> np.ndarray:
    x = np.linspace(0.0, 3.0, n)
    return 2.0 * (x - np.floor(x + 0.5)) * np.hanning(n)


def _step(n: int) -> np.ndarray:
    out = np.zeros(n)
    out[n // 3 : 2 * n // 3] = 1.0
    return out - out.mean()


def _double_bump(n: int) -> np.ndarray:
    x = np.linspace(-4.0, 4.0, n)
    return np.exp(-((x + 2.0) ** 2)) - np.exp(-((x - 2.0) ** 2))


def _damped_osc(n: int) -> np.ndarray:
    x = np.linspace(0.0, 4.0 * np.pi, n)
    return np.exp(-x / 6.0) * np.sin(x)


def _triangle(n: int) -> np.ndarray:
    half = n // 2
    up = np.linspace(0.0, 1.0, half, endpoint=False)
    down = np.linspace(1.0, 0.0, n - half)
    return np.concatenate([up, down]) - 0.5


#: The shape library; classes cycle through it (with sign flips past one lap).
PATTERN_LIBRARY = (
    _bump,
    _sine_burst,
    _double_bump,
    _step,
    _chirp,
    _sawtooth,
    _damped_osc,
    _triangle,
)


def _ar1_noise(rng: np.random.Generator, n: int, rho: float, scale: float) -> np.ndarray:
    """AR(1)-smoothed Gaussian background."""
    white = rng.normal(scale=scale, size=n)
    out = np.empty(n)
    out[0] = white[0]
    for i in range(1, n):
        out[i] = rho * out[i - 1] + white[i]
    return out


def _class_prototype(class_id: int, pattern_len: int, rng: np.random.Generator) -> np.ndarray:
    """Deterministic prototype for a class: library shape + small jitter."""
    base = PATTERN_LIBRARY[class_id % len(PATTERN_LIBRARY)](pattern_len)
    sign = -1.0 if (class_id // len(PATTERN_LIBRARY)) % 2 else 1.0
    jitter = 0.05 * rng.standard_normal(pattern_len)
    proto = sign * base + jitter
    peak = np.abs(proto).max()
    return proto / peak if peak > 0 else proto


def _plant(
    series: np.ndarray,
    pattern: np.ndarray,
    rng: np.random.Generator,
    amplitude: float,
    warp: float,
) -> None:
    """Insert a warped, scaled copy of ``pattern`` at a random position."""
    nominal = pattern.size
    if warp > 0:
        low = max(4, int(round(nominal * (1.0 - warp))))
        high = min(series.size, int(round(nominal * (1.0 + warp))))
        length = int(rng.integers(low, max(low, high) + 1))
    else:
        length = nominal
    length = min(length, series.size)
    warped = linear_interpolate_resample(pattern, length)
    start = int(rng.integers(0, series.size - length + 1))
    series[start : start + length] += amplitude * warped


def make_planted_dataset(
    n_classes: int,
    n_instances: int,
    length: int,
    pattern_ratio: float = 0.25,
    amplitude: float = 2.5,
    amplitude_jitter: float = 0.25,
    warp: float = 0.1,
    noise_scale: float = 0.35,
    noise_rho: float = 0.6,
    n_distractors: int = 1,
    seed: int | np.random.Generator | None = 0,
    name: str = "planted",
) -> Dataset:
    """Generate a labelled dataset with planted class-specific shapelets.

    Parameters
    ----------
    n_classes, n_instances, length:
        Shape of the output (instances are split as evenly as possible
        across classes, every class gets at least one).
    pattern_ratio:
        Planted pattern length as a fraction of the series length.
    amplitude, amplitude_jitter:
        Pattern scale and its per-instance multiplicative jitter.
    warp:
        Relative time-warp range of the planted pattern.
    noise_scale, noise_rho:
        AR(1) background parameters.
    n_distractors:
        Class-independent patterns added to every instance (makes global
        statistics uninformative).
    seed:
        Reproducibility seed.
    name:
        Dataset name carried into the container.
    """
    if n_classes < 1:
        raise ValidationError("n_classes must be >= 1")
    if n_instances < n_classes:
        raise ValidationError("need at least one instance per class")
    if length < 16:
        raise ValidationError("length must be >= 16")
    if not 0.0 < pattern_ratio <= 0.9:
        raise ValidationError("pattern_ratio must be in (0, 0.9]")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    pattern_len = max(8, int(round(pattern_ratio * length)))
    proto_rng = np.random.default_rng(rng.integers(2**32))
    prototypes = [
        _class_prototype(c, pattern_len, proto_rng) for c in range(n_classes)
    ]
    distractor_len = max(6, pattern_len // 2)
    distractors = [
        0.6 * proto_rng.standard_normal(distractor_len) for _ in range(n_distractors)
    ]

    labels = np.arange(n_instances) % n_classes
    rng.shuffle(labels)
    X = np.empty((n_instances, length))
    for i, label in enumerate(labels):
        series = _ar1_noise(rng, length, noise_rho, noise_scale)
        amp = amplitude * (1.0 + amplitude_jitter * rng.standard_normal())
        _plant(series, prototypes[label], rng, amp, warp)
        for distractor in distractors:
            if rng.random() < 0.5:
                _plant(series, distractor, rng, amplitude * 0.4, warp)
        X[i] = series
    return Dataset(X=X, y=labels, name=name)


def make_multivariate_planted(
    n_classes: int,
    n_instances: int,
    n_dimensions: int,
    length: int,
    informative_dimensions: int = 1,
    seed: int | np.random.Generator | None = 0,
    name: str = "planted-mv",
    **planted_kwargs,
):
    """Multivariate planted dataset: some channels informative, rest noise.

    The first ``informative_dimensions`` channels each carry independently
    planted class-specific patterns (all consistent with the same label
    vector); the remaining channels are AR(1) noise. Returns a
    :class:`repro.multivariate.MultivariateDataset`.
    """
    from repro.multivariate.dataset import MultivariateDataset

    if not 1 <= informative_dimensions <= n_dimensions:
        raise ValidationError(
            "informative_dimensions must be in [1, n_dimensions]"
        )
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    base = make_planted_dataset(
        n_classes=n_classes,
        n_instances=n_instances,
        length=length,
        seed=np.random.default_rng(rng.integers(2**32)),
        **planted_kwargs,
    )
    X = np.empty((n_instances, n_dimensions, length))
    X[:, 0, :] = base.X
    for dim in range(1, informative_dimensions):
        extra = make_planted_dataset(
            n_classes=n_classes,
            n_instances=n_instances,
            length=length,
            seed=np.random.default_rng(rng.integers(2**32)),
            **planted_kwargs,
        )
        # Re-order the extra channel's rows so labels line up with base.
        available = {c: list(np.flatnonzero(extra.y == c)) for c in range(n_classes)}
        chosen = [available[int(label)].pop() for label in base.y]
        X[:, dim, :] = extra.X[chosen]
    for dim in range(informative_dimensions, n_dimensions):
        for i in range(n_instances):
            X[i, dim, :] = _ar1_noise(rng, length, 0.6, 0.5)
    return MultivariateDataset(X=X, y=base.classes_[base.y], name=name)
