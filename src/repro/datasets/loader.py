"""Dataset loader: registry name -> generated train/test split.

``load_dataset`` mimics a UCR loader: given a dataset name it returns a
train/test pair at the registered sizes, optionally capped for laptop-scale
benchmarking (the paper ran a 20-core Xeon for hours; the bench harness
caps sizes so every table regenerates in minutes while preserving the
relative orderings — see DESIGN.md).
"""

from __future__ import annotations

import typing
from dataclasses import dataclass


from repro.classify.model_selection import train_test_split
from repro.datasets import special
from repro.datasets.generators import make_planted_dataset
from repro.datasets.registry import DatasetProfile, get_profile
from repro.exceptions import ValidationError
from repro.ts.series import Dataset

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.validation import ValidationReport

#: Simple in-process cache; benchmarks reload the same datasets repeatedly.
_CACHE: dict[tuple, "TrainTestData"] = {}
_CACHE_LIMIT = 64


@dataclass(frozen=True)
class TrainTestData:
    """A generated dataset split plus its registry profile.

    ``validation`` carries the :class:`~repro.validation.ValidationReport`
    of the pool the split was cut from, when the loader ran the data
    contracts (``None`` for legacy callers and ``validation="off"``).
    """

    train: Dataset
    test: Dataset
    profile: DatasetProfile
    validation: "ValidationReport | None" = None

    @property
    def name(self) -> str:
        """Dataset name."""
        return self.profile.name


def dataset_names() -> list[str]:
    """All registered dataset names, sorted."""
    from repro.datasets.registry import REGISTRY

    return sorted(REGISTRY)


def _generate_pool(
    profile: DatasetProfile, n_total: int, length: int, seed: int
) -> Dataset:
    """One combined pool of instances for the profile's generator."""
    kwargs = dict(profile.gen_kwargs)
    if profile.generator == "planted":
        return make_planted_dataset(
            n_classes=profile.n_classes,
            n_instances=n_total,
            length=length,
            seed=seed,
            name=profile.name,
            **kwargs,
        )
    if profile.generator == "cbf":
        return special.make_cbf(n_total, length=length, seed=seed)
    if profile.generator == "two_patterns":
        return special.make_two_patterns(n_total, length=length, seed=seed)
    if profile.generator == "synthetic_control":
        return special.make_synthetic_control(n_total, length=length, seed=seed)
    if profile.generator == "italy_power":
        return special.make_italy_power(n_total, length=length, seed=seed)
    if profile.generator == "ecg":
        n_classes = kwargs.pop("n_classes_gen", profile.n_classes)
        return special.make_ecg(
            n_total, length=length, n_classes=n_classes, seed=seed, name=profile.name
        )
    if profile.generator == "gun_point":
        return special.make_gun_point(n_total, length=length, seed=seed)
    raise ValidationError(f"unknown generator {profile.generator!r}")


def load_dataset(
    name: str,
    seed: int = 0,
    max_train: int | None = None,
    max_test: int | None = None,
    max_length: int | None = None,
    validation: str = "repair",
) -> TrainTestData:
    """Generate (or fetch from cache) a dataset by registry name.

    Parameters
    ----------
    name:
        Registry name, e.g. ``"ArrowHead"``.
    seed:
        Generation seed; the same (name, seed, caps) always returns
        identical data.
    max_train, max_test, max_length:
        Optional caps below the registered sizes. Class counts are never
        reduced; ``max_train`` is clamped upward to at least 2 instances
        per class so every class is learnable.
    validation:
        Data-contract mode for the generated pool: ``"repair"``
        (default), ``"strict"``, or ``"off"``. The resulting
        :class:`~repro.validation.ValidationReport` is attached to
        :attr:`TrainTestData.validation`.
    """
    profile = get_profile(name)
    n_train = profile.n_train if max_train is None else min(profile.n_train, max_train)
    n_test = profile.n_test if max_test is None else min(profile.n_test, max_test)
    length = profile.length if max_length is None else min(profile.length, max_length)
    n_train = max(n_train, 2 * profile.n_classes)
    n_test = max(n_test, profile.n_classes)
    length = max(length, 24)

    key = (name, seed, n_train, n_test, length, validation)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached

    pool = _generate_pool(profile, n_train + n_test, length, seed)
    report = None
    if validation != "off":
        from repro.validation import validate_dataset

        validated = validate_dataset(pool, mode=validation, name=name)
        pool = validated.dataset
        report = validated.report
    test_fraction = n_test / (n_train + n_test)
    X_train, y_train, X_test, y_test = train_test_split(
        pool.X,
        pool.classes_[pool.y],
        test_fraction=test_fraction,
        stratify=True,
        seed=seed + 1,
    )
    data = TrainTestData(
        train=Dataset(X=X_train, y=y_train, name=name),
        test=Dataset(X=X_test, y=y_test, name=name),
        profile=profile,
        validation=report,
    )
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.pop(next(iter(_CACHE)))
    _CACHE[key] = data
    return data
