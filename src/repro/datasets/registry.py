"""Registry of the UCR datasets evaluated by the paper.

Each :class:`DatasetProfile` records the *true* UCR-archive metadata
(class count, train/test sizes, series length, coarse type) together with
the generator that synthesizes a stand-in (see DESIGN.md's substitution
table). The 46 datasets of Tables IV/VI plus MoteStrain (Table II) are all
present.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import DatasetError


@dataclass(frozen=True)
class DatasetProfile:
    """True UCR metadata + generator binding for one dataset."""

    name: str
    n_classes: int
    n_train: int
    n_test: int
    length: int
    category: str
    generator: str = "planted"
    gen_kwargs: dict = field(default_factory=dict)


def _p(
    name: str,
    n_classes: int,
    n_train: int,
    n_test: int,
    length: int,
    category: str,
    generator: str = "planted",
    **gen_kwargs,
) -> DatasetProfile:
    return DatasetProfile(
        name=name,
        n_classes=n_classes,
        n_train=n_train,
        n_test=n_test,
        length=length,
        category=category,
        generator=generator,
        gen_kwargs=gen_kwargs,
    )


#: All evaluated datasets, keyed by name (true UCR 2018 metadata).
REGISTRY: dict[str, DatasetProfile] = {
    profile.name: profile
    for profile in (
        _p("ArrowHead", 3, 36, 175, 251, "Image"),
        _p("Beef", 5, 30, 30, 470, "Spectro", noise_scale=0.5),
        _p("BeetleFly", 2, 20, 20, 512, "Image"),
        _p("CBF", 3, 30, 900, 128, "Simulated", generator="cbf"),
        _p("ChlorineConcentration", 3, 467, 3840, 166, "Sensor", noise_scale=0.6),
        _p("Coffee", 2, 28, 28, 286, "Spectro", noise_scale=0.25),
        _p("Computers", 2, 250, 250, 720, "Device", noise_scale=0.6),
        _p("CricketZ", 12, 390, 390, 300, "Motion", warp=0.15),
        _p("DiatomSizeReduction", 4, 16, 306, 345, "Image", noise_scale=0.2),
        _p("DistalPhalanxOutlineCorrect", 2, 600, 276, 80, "Image"),
        _p("Earthquakes", 2, 322, 139, 512, "Sensor", noise_scale=0.8),
        _p("ECG200", 2, 100, 100, 96, "ECG", generator="ecg"),
        _p("ECG5000", 5, 500, 4500, 140, "ECG", generator="ecg", n_classes_gen=5),
        _p("ECGFiveDays", 2, 23, 861, 136, "ECG", generator="ecg"),
        _p("ElectricDevices", 7, 8926, 7711, 96, "Device", noise_scale=0.7),
        _p("FaceAll", 14, 560, 1690, 131, "Image"),
        _p("FaceFour", 4, 24, 88, 350, "Image"),
        _p("FacesUCR", 14, 200, 2050, 131, "Image"),
        _p("FordA", 2, 3601, 1320, 500, "Sensor", noise_scale=0.6),
        _p("GunPoint", 2, 50, 150, 150, "Motion", generator="gun_point"),
        _p("Ham", 2, 109, 105, 431, "Spectro", noise_scale=0.55),
        _p("HandOutlines", 2, 1000, 370, 2709, "Image"),
        _p("Haptics", 5, 155, 308, 1092, "Motion", noise_scale=0.8, warp=0.15),
        _p("InlineSkate", 7, 100, 550, 1882, "Motion", noise_scale=0.85, warp=0.2),
        _p("InsectWingbeatSound", 11, 220, 1980, 256, "Sensor", noise_scale=0.7),
        _p("ItalyPowerDemand", 2, 67, 1029, 24, "Sensor", generator="italy_power"),
        _p("LargeKitchenAppliances", 3, 375, 375, 720, "Device", noise_scale=0.6),
        _p("Mallat", 8, 55, 2345, 1024, "Simulated", noise_scale=0.3),
        _p("Meat", 3, 60, 60, 448, "Spectro", noise_scale=0.25),
        _p("MoteStrain", 2, 20, 1252, 84, "Sensor", noise_scale=0.6),
        _p(
            "NonInvasiveFatalECGThorax1",
            42,
            1800,
            1965,
            750,
            "ECG",
            noise_scale=0.45,
        ),
        _p("OSULeaf", 6, 200, 242, 427, "Image", warp=0.15),
        _p("Phoneme", 39, 214, 1896, 1024, "Sensor", noise_scale=0.95),
        _p("RefrigerationDevices", 3, 375, 375, 720, "Device", noise_scale=0.75),
        _p("ShapeletSim", 2, 20, 180, 500, "Simulated", noise_scale=1.0, amplitude=3.5),
        _p("SonyAIBORobotSurface1", 2, 20, 601, 70, "Sensor"),
        _p("SonyAIBORobotSurface2", 2, 27, 953, 65, "Sensor"),
        _p("Strawberry", 2, 613, 370, 235, "Spectro", noise_scale=0.3),
        _p("Symbols", 6, 25, 995, 398, "Image", noise_scale=0.35),
        _p("SyntheticControl", 6, 300, 300, 60, "Simulated", generator="synthetic_control"),
        _p("ToeSegmentation1", 2, 40, 228, 277, "Motion", warp=0.15),
        _p("TwoLeadECG", 2, 23, 1139, 82, "ECG", generator="ecg"),
        _p("TwoPatterns", 4, 1000, 4000, 128, "Simulated", generator="two_patterns"),
        _p("UWaveGestureLibraryY", 8, 896, 3582, 315, "Motion", warp=0.15),
        _p("Wafer", 2, 1000, 6164, 152, "Sensor", noise_scale=0.4),
        _p("WormsTwoClass", 2, 181, 77, 900, "Motion", noise_scale=0.8),
        _p("Yoga", 2, 300, 3000, 426, "Image", noise_scale=0.6),
    )
}

#: The 46 datasets of Tables IV and VI (MoteStrain appears only in Table II).
TABLE_DATASETS: tuple[str, ...] = tuple(
    name for name in REGISTRY if name != "MoteStrain"
)


def get_profile(name: str) -> DatasetProfile:
    """Look up a dataset profile; raises :class:`DatasetError` if unknown."""
    try:
        return REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise DatasetError(f"unknown dataset {name!r}; known: {known}") from None
