"""Bounded admission queue: backpressure and load-shedding for the service.

The queue is the service's only buffer, so its bound *is* the
backpressure mechanism: when ``depth`` requests are already waiting, the
admission policy decides who pays —

``reject-newest``
    The arriving request is refused with
    :class:`repro.exceptions.QueueFullError` (classic backpressure: the
    caller learns immediately and can retry elsewhere).
``shed-oldest``
    The oldest waiting request is evicted and completed with
    :class:`repro.exceptions.RequestSheddedError`, and the arriving one
    is admitted (freshness-first: under overload, old requests are the
    most likely to be past their deadline anyway).

Eviction hands the shed entries back to the caller instead of completing
them under the queue lock, so user-visible callbacks never run inside
the queue's critical section (a classic deadlock source).
"""

from __future__ import annotations

import threading
from collections import deque

from repro.exceptions import QueueFullError, ServiceClosedError, ValidationError

SHED_POLICIES = ("reject-newest", "shed-oldest")


class AdmissionQueue:
    """Thread-safe bounded FIFO with an explicit overflow policy."""

    def __init__(self, depth: int, policy: str = "reject-newest") -> None:
        if depth < 1:
            raise ValidationError(f"queue depth must be >= 1, got {depth}")
        if policy not in SHED_POLICIES:
            raise ValidationError(
                f"unknown shed policy {policy!r}; expected one of {SHED_POLICIES}"
            )
        self.depth = depth
        self.policy = policy
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        #: Admission statistics (read under the lock via :meth:`stats`).
        self._admitted = 0
        self._rejected = 0
        self._shed = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def put(self, item) -> list:
        """Admit ``item``; returns the entries shed to make room.

        Raises :class:`QueueFullError` under the ``reject-newest``
        policy when full, and :class:`ServiceClosedError` after
        :meth:`close`. The returned (possibly empty) list of evicted
        entries must be completed by the caller — outside the lock.
        """
        with self._not_empty:
            if self._closed:
                raise ServiceClosedError("service is stopped; request refused")
            shed: list = []
            if len(self._items) >= self.depth:
                if self.policy == "reject-newest":
                    self._rejected += 1
                    raise QueueFullError(
                        f"admission queue full ({self.depth} waiting); "
                        "request rejected (backpressure)"
                    )
                while len(self._items) >= self.depth:
                    shed.append(self._items.popleft())
                    self._shed += 1
            self._items.append(item)
            self._admitted += 1
            self._not_empty.notify()
            return shed

    def get_batch(self, max_batch: int, timeout: float) -> list:
        """Pop up to ``max_batch`` entries, waiting up to ``timeout``.

        Returns an empty list on timeout or once the queue is closed and
        drained — the worker-loop exit signal.
        """
        with self._not_empty:
            if not self._items and not self._closed:
                self._not_empty.wait(timeout)
            batch = []
            while self._items and len(batch) < max_batch:
                batch.append(self._items.popleft())
            return batch

    def drain(self) -> list:
        """Remove and return every waiting entry (used at shutdown)."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
            return items

    def close(self) -> None:
        """Refuse all future admissions and wake every waiting worker."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def stats(self) -> dict:
        """Snapshot of admission counters."""
        with self._lock:
            return {
                "admitted": self._admitted,
                "rejected": self._rejected,
                "shed": self._shed,
                "waiting": len(self._items),
            }


__all__ = ["AdmissionQueue", "SHED_POLICIES"]
