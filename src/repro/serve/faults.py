"""Deterministic fault injection for the serving request path.

Extends :mod:`repro.distributed.faults` into the service: the same
:class:`~repro.distributed.faults.FaultPlan` drives per-*request* fault
decisions, keyed by ``(plan seed, request seed, attempt)`` exactly like
distributed work units — so a chaos campaign against the service replays
bit-for-bit, and a request that fails on the batched attempt (attempt 0)
draws fresh deterministic fate on the serial fallback (attempt 1+),
which is what makes injected faults recoverable.

Fault kinds map onto serving failure modes:

``crash``
    The worker handling the batch dies: the whole batched attempt raises
    :class:`~repro.exceptions.WorkerCrashError` (one sick request takes
    its batch down, like a real worker process).
``hang``
    The worker never answers: raises the
    :class:`~repro.exceptions.UnitTimeoutError` sentinel (or really
    sleeps ``hang_seconds`` when set) — surfacing as a deadline/batch
    failure.
``slow``
    Deterministic latency jitter (see ``FaultPlan.slow_delay``): the
    answer is correct but late, driving deadline enforcement and tail
    latency.
``nan``
    A corrupt payload: the request's prediction is replaced by
    :data:`CORRUPT_LABEL`, a label no trained classifier emits — payload
    validation must catch it before it reaches the caller.

``drop``/``duplicate`` have no serving analogue (the request path is
call/response, not message passing) and are ignored.
"""

from __future__ import annotations

import time

import numpy as np

from repro.distributed.faults import FaultPlan
from repro.exceptions import UnitTimeoutError, WorkerCrashError

#: Sentinel prediction standing in for a corrupted payload. No classifier
#: can produce it (labels come from ``Dataset.classes_``, which are real
#: class values), so payload validation always detects it.
CORRUPT_LABEL = np.int64(np.iinfo(np.int64).min)


class RequestFaultInjector:
    """Apply a :class:`FaultPlan` to serving requests.

    ``pre_compute`` runs the faults that happen *before* an answer
    exists (crash / hang / slow); ``corrupts`` reports whether the
    answer must be poisoned afterwards. Both are pure functions of
    ``(request seed, attempt)``.
    """

    def __init__(self, plan: FaultPlan, sleep=time.sleep) -> None:
        self.plan = plan
        self._sleep = sleep

    def decide(self, request_seed: int, attempt: int) -> str | None:
        """The fault (if any) hitting this ``(request, attempt)`` pair."""
        return self.plan.decide(request_seed, attempt)

    def pre_compute(self, request_seed: int, attempt: int) -> str | None:
        """Run pre-answer faults; returns the decided fault kind.

        Raises :class:`WorkerCrashError` / :class:`UnitTimeoutError` for
        crash and hang; sleeps for slow (and for a live ``hang_seconds``
        hang); is a no-op for payload corruption (handled post-answer).
        """
        fault = self.decide(request_seed, attempt)
        if fault == "crash":
            raise WorkerCrashError(
                f"injected worker crash (request seed={request_seed}, "
                f"attempt={attempt})"
            )
        if fault == "hang":
            if self.plan.hang_seconds > 0:
                self._sleep(self.plan.hang_seconds)
            else:
                raise UnitTimeoutError(
                    f"injected worker hang (request seed={request_seed}, "
                    f"attempt={attempt})"
                )
        if fault == "slow":
            self._sleep(self.plan.slow_delay(request_seed, attempt))
        return fault

    def corrupts(self, request_seed: int, attempt: int) -> bool:
        """Whether this ``(request, attempt)``'s payload gets poisoned."""
        return self.decide(request_seed, attempt) == "nan"


__all__ = ["CORRUPT_LABEL", "RequestFaultInjector"]
