"""Frozen-model artifacts: save/load a fitted classifier with integrity checks.

An artifact is a directory::

    <artifact_dir>/
        manifest.json   # run-manifest fields + format version + checksums
        model.bin       # the frozen classifier payload (stdlib pickle)

The manifest reuses the :func:`repro.obs.run_manifest` format — full
config, seed, dataset SHA-256 fingerprint, package versions, git SHA —
extended with an artifact ``format_version`` and a per-file SHA-256
checksum table. Loading refuses, with *typed* errors, anything it cannot
vouch for:

* missing directory / manifest / payload → :class:`ArtifactError`;
* unparseable manifest, checksum mismatch, unpicklable payload, or a
  payload that is not a fitted classifier →
  :class:`ArtifactIntegrityError`;
* unknown ``format_version`` (or, under ``strict_versions=True``, any
  package-version drift) → :class:`ArtifactVersionError`.

The checksum table guards against *corruption* (torn writes, bit rot,
truncated copies), not against a malicious artifact author: the payload
is a pickle, so only load artifacts you produced. Writes are atomic
(temp file + ``os.replace``), matching the checkpoint store's crash
discipline.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import json
import os
import pickle
import time
from pathlib import Path

from repro.exceptions import (
    ArtifactError,
    ArtifactIntegrityError,
    ArtifactVersionError,
    NotFittedError,
)
from repro.obs.manifest import dataset_fingerprint, git_sha, package_versions

#: Bumped whenever the payload layout changes incompatibly.
ARTIFACT_FORMAT_VERSION = 1

_MANIFEST = "manifest.json"
_MODEL = "model.bin"


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(payload)
    os.replace(tmp, path)


def _frozen_copy(classifier):
    """A lean, inference-only copy of a fitted classifier.

    Discovery-time state (candidate pools, traces, kernel caches) can be
    orders of magnitude larger than the model and is useless at serving
    time, so it is stripped. The copy still satisfies
    ``predict``/``score`` bit-identically — only ``fit`` is off the
    table, which is the definition of a frozen artifact.
    """
    frozen = copy.copy(classifier)
    frozen.discoverer_ = None
    frozen.discovery_result_ = None
    frozen._tracer = None
    if frozen._transform is not None:
        transform = copy.copy(frozen._transform)
        transform.cache = None
        frozen._transform = transform
    return frozen


def save_artifact(classifier, artifact_dir: str | Path) -> Path:
    """Persist a fitted :class:`~repro.core.pipeline.IPSClassifier`.

    Returns the artifact directory. Raises
    :class:`~repro.exceptions.NotFittedError` for an unfitted classifier
    — an artifact that cannot predict is not worth writing.
    """
    if (
        getattr(classifier, "_svm", None) is None
        or getattr(classifier, "_transform", None) is None
        or getattr(classifier, "_scaler", None) is None
        or getattr(classifier, "_dataset", None) is None
    ):
        raise NotFittedError("cannot save an unfitted classifier as an artifact")
    artifact_dir = Path(artifact_dir)
    artifact_dir.mkdir(parents=True, exist_ok=True)

    payload = pickle.dumps(_frozen_copy(classifier), protocol=4)
    model_path = artifact_dir / _MODEL
    _atomic_write_bytes(model_path, payload)

    from repro.obs.trace import jsonify

    dataset = classifier._dataset
    manifest = {
        "format_version": ARTIFACT_FORMAT_VERSION,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": jsonify(dataclasses.asdict(classifier.config)),
        "seed": classifier.config.seed,
        "dataset": dataset_fingerprint(dataset),
        "versions": package_versions(),
        "git_sha": git_sha(),
        "model": {
            "n_shapelets": len(classifier.shapelets_ or []),
            "series_length": dataset.series_length,
            "n_classes": dataset.n_classes,
            "classes": [int(c) for c in dataset.classes_],
            "final_classifier": classifier.config.final_classifier,
        },
        "files": {_MODEL: _sha256_file(model_path)},
    }
    _atomic_write_bytes(
        artifact_dir / _MANIFEST,
        (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode(),
    )
    return artifact_dir


def read_manifest(artifact_dir: str | Path) -> dict:
    """Parse and structurally check an artifact manifest (typed errors)."""
    artifact_dir = Path(artifact_dir)
    path = artifact_dir / _MANIFEST
    if not artifact_dir.is_dir():
        raise ArtifactError(f"artifact directory {artifact_dir} does not exist")
    if not path.exists():
        raise ArtifactError(f"artifact at {artifact_dir} has no {_MANIFEST}")
    try:
        manifest = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ArtifactIntegrityError(
            f"unreadable artifact manifest at {path}: {exc}"
        ) from exc
    if not isinstance(manifest, dict) or "files" not in manifest:
        raise ArtifactIntegrityError(
            f"artifact manifest at {path} is missing its checksum table"
        )
    version = manifest.get("format_version")
    if version != ARTIFACT_FORMAT_VERSION:
        raise ArtifactVersionError(
            f"artifact format_version {version!r} is not the supported "
            f"{ARTIFACT_FORMAT_VERSION}; re-export the artifact"
        )
    return manifest


def verify_checksums(artifact_dir: str | Path, manifest: dict) -> None:
    """Check every file in the manifest's checksum table (typed errors)."""
    artifact_dir = Path(artifact_dir)
    for name, expected in manifest["files"].items():
        path = artifact_dir / name
        if not path.exists():
            raise ArtifactIntegrityError(
                f"artifact file {name} listed in the manifest is missing"
            )
        actual = _sha256_file(path)
        if actual != expected:
            raise ArtifactIntegrityError(
                f"artifact file {name} failed its checksum "
                f"(expected {expected[:12]}..., got {actual[:12]}...): "
                "the artifact is corrupt; re-export it"
            )


def load_artifact(
    artifact_dir: str | Path, *, strict_versions: bool = False
):
    """Load a frozen classifier, refusing corrupt or mismatched artifacts.

    Parameters
    ----------
    artifact_dir:
        Directory written by :func:`save_artifact`.
    strict_versions:
        When True, any difference between the manifest's recorded
        package versions (numpy/scipy/repro/python) and the running
        environment raises :class:`ArtifactVersionError`. Default off:
        numerical drift across patch versions is tolerated, format drift
        never is.

    Returns
    -------
    The fitted classifier, exactly as frozen (``predict`` bit-identical
    to the classifier that was saved).
    """
    artifact_dir = Path(artifact_dir)
    manifest = read_manifest(artifact_dir)
    if strict_versions:
        current = package_versions()
        recorded = manifest.get("versions", {})
        drift = {
            name: (recorded.get(name), current[name])
            for name in current
            if recorded.get(name) != current[name]
        }
        if drift:
            detail = ", ".join(
                f"{name}: artifact {old!r} vs running {new!r}"
                for name, (old, new) in sorted(drift.items())
            )
            raise ArtifactVersionError(
                f"package versions drifted since the artifact was written "
                f"({detail}); pass strict_versions=False to accept"
            )
    verify_checksums(artifact_dir, manifest)
    model_path = artifact_dir / _MODEL
    try:
        with open(model_path, "rb") as fh:
            classifier = pickle.load(fh)
    except Exception as exc:  # noqa: BLE001 - any unpickle failure => corrupt
        raise ArtifactIntegrityError(
            f"artifact payload {model_path} failed to load: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    from repro.core.pipeline import IPSClassifier

    if not isinstance(classifier, IPSClassifier):
        raise ArtifactIntegrityError(
            f"artifact payload is a {type(classifier).__name__}, "
            "not an IPSClassifier"
        )
    if (
        getattr(classifier, "_svm", None) is None
        or getattr(classifier, "_transform", None) is None
        or getattr(classifier, "_scaler", None) is None
        or getattr(classifier, "_dataset", None) is None
    ):
        raise ArtifactIntegrityError(
            "artifact payload is an unfitted classifier"
        )
    return classifier


__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "load_artifact",
    "read_manifest",
    "save_artifact",
    "verify_checksums",
]
