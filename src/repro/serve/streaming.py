"""Streaming sessions over the serving layer: chunked early classification.

:class:`StreamingInferenceService` extends
:class:`~repro.serve.service.InferenceService` with a session table: a
caller opens a stream, submits chunks, and receives a
:class:`~repro.streaming.StreamingDecision` after every chunk — final as
soon as the decision margin clears the threshold, so the verdict often
arrives well before the series does. The batch request path (``predict``
/ ``predict_proba`` / ``decision_function``) keeps working next to the
sessions.

The serving disciplines carry over:

* **admission** — a hard ``max_sessions`` cap
  (:class:`~repro.exceptions.SessionLimitError`) plus TTL eviction of
  idle sessions (:class:`~repro.exceptions.UnknownSessionError` on later
  use);
* **deadlines** — an optional per-session deadline; late chunks fail
  with :class:`~repro.exceptions.DeadlineExceededError` and the session
  is dropped;
* **circuit breaker** — chunk computation shares the service's breaker:
  failures trip it, and an open breaker refuses chunks with
  :class:`~repro.exceptions.CircuitOpenError` without computing;
* **validation** — chunks are checked per the service's validation mode
  (``repair`` zero-fills non-finite values, ``strict``/``off`` refuse).

Decisions are consistent with batch serving: the streaming features
converge bit-identically to the batch ``direct`` engine, so a session
run to end-of-stream emits the label the batch path would.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.budget import Budget
from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    InvalidRequestError,
    RequestFailedError,
    ServiceClosedError,
    SessionLimitError,
    UnknownSessionError,
    ValidationError,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import HealthReason
from repro.serve.service import (
    QUEUE_SATURATION_DEGRADED,
    InferenceService,
    ServeConfig,
)
from repro.streaming import EarlyClassifier, StreamingDecision


@dataclass(frozen=True)
class StreamConfig:
    """Session-table tunables of one :class:`StreamingInferenceService`.

    Attributes
    ----------
    max_sessions:
        Hard cap on concurrently open sessions (admission control).
    session_ttl_s:
        Idle sessions older than this are evicted at the next session
        operation; ``None`` disables expiry.
    margin_threshold:
        Default early-emission margin threshold of new sessions
        (overridable per :meth:`StreamingInferenceService.open_stream`).
    min_fraction:
        Fraction of the model's training series length that must arrive
        before early emission is allowed.
    """

    max_sessions: int = 64
    session_ttl_s: float | None = 300.0
    margin_threshold: float = 1.0
    min_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ValidationError("max_sessions must be >= 1")
        if self.session_ttl_s is not None and self.session_ttl_s <= 0:
            raise ValidationError("session_ttl_s must be > 0 when set")
        if self.margin_threshold < 0:
            raise ValidationError("margin_threshold must be >= 0")
        if not 0.0 <= self.min_fraction <= 1.0:
            raise ValidationError("min_fraction must be in [0, 1]")


@dataclass
class _Session:
    """One open stream: its early classifier plus bookkeeping."""

    session_id: int
    early: EarlyClassifier
    deadline: float | None
    last_seen: float
    lock: threading.Lock = field(default_factory=threading.Lock)
    chunks: int = 0
    #: Whether this session's drift detector has already been counted
    #: (the latch fires once per session in ``streaming.drift_flags``).
    drift_counted: bool = False


class StreamingInferenceService(InferenceService):
    """An :class:`InferenceService` that also serves chunked streams.

    Parameters
    ----------
    classifier:
        A fitted :class:`~repro.core.pipeline.IPSClassifier`.
    config:
        Batch-path :class:`~repro.serve.service.ServeConfig`.
    stream_config:
        :class:`StreamConfig` for the session table.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` shared by
        the batch path, every session's early classifier (margins, emit
        times, per-append latency), and the session table itself
        (``streaming.*`` counters/gauges/windows).
    slo:
        Optional :class:`~repro.obs.telemetry.SLOTracker` for the batch
        request path (chunk appends do not feed it).
    """

    def __init__(
        self,
        classifier,
        config: ServeConfig | None = None,
        stream_config: StreamConfig | None = None,
        *,
        metrics: MetricsRegistry | None = None,
        slo=None,
        fault_plan=None,
        clock=time.monotonic,
    ) -> None:
        super().__init__(
            classifier,
            config,
            fault_plan=fault_plan,
            clock=clock,
            metrics=metrics,
            slo=slo,
        )
        self.stream_config = stream_config or StreamConfig()
        self._sessions: dict[int, _Session] = {}
        self._sessions_lock = threading.Lock()
        self._next_session_id = 0
        self._stream_stats = {
            "sessions_opened": 0,
            "sessions_expired": 0,
            "sessions_closed": 0,
            "chunks": 0,
            "early_emits": 0,
        }

    # -- session table -----------------------------------------------------

    def _stream_note(self, key: str, n: int = 1) -> None:
        """Bump a session-table stat (``_sessions_lock`` must be held).

        Mirrored as ``streaming.*`` counters/gauges in the shared
        registry — except ``early_emits``, which the sessions' own
        :class:`EarlyClassifier` instances already count there.
        """
        self._stream_stats[key] += n
        if self.metrics is None:
            return
        if key != "early_emits":
            self.metrics.counter(f"streaming.{key}", n)
        self.metrics.gauge("streaming.open_sessions", len(self._sessions))
        opened = self._stream_stats["sessions_opened"]
        self.metrics.gauge(
            "streaming.early_emit_fraction",
            self._stream_stats["early_emits"] / opened if opened else 0.0,
        )

    def _expire_sessions(self, now: float) -> None:
        ttl = self.stream_config.session_ttl_s
        if ttl is None:
            return
        expired = [
            sid
            for sid, session in self._sessions.items()
            if now - session.last_seen >= ttl
        ]
        for sid in expired:
            del self._sessions[sid]
            self._stream_note("sessions_expired")

    def _get_session(self, session_id: int) -> _Session:
        with self._sessions_lock:
            self._expire_sessions(self._clock())
            session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSessionError(
                f"unknown streaming session {session_id} (never opened, "
                "closed, or expired)"
            )
        return session

    def open_stream(
        self,
        *,
        margin_threshold: float | None = None,
        min_samples: int | None = None,
        deadline_s: float | None = None,
        budget: Budget | None = None,
    ) -> int:
        """Open a session; returns its id for :meth:`submit_chunk`.

        ``min_samples`` defaults to ``min_fraction`` of the model's
        training series length; ``deadline_s`` bounds the session's total
        wall-clock lifetime; ``budget`` forces an anytime decision on
        exhaustion.
        """
        if not self._running:
            raise ServiceClosedError("service is not running; call start()")
        if margin_threshold is None:
            margin_threshold = self.stream_config.margin_threshold
        if min_samples is None:
            min_samples = math.ceil(
                self.stream_config.min_fraction * self.series_length
            )
        early = EarlyClassifier.from_classifier(
            self.classifier,
            margin_threshold=margin_threshold,
            min_samples=min_samples,
            budget=budget,
            metrics=self.metrics,
        )
        now = self._clock()
        with self._sessions_lock:
            self._expire_sessions(now)
            if len(self._sessions) >= self.stream_config.max_sessions:
                raise SessionLimitError(
                    f"session table full ({self.stream_config.max_sessions} "
                    "open sessions)"
                )
            session_id = self._next_session_id
            self._next_session_id += 1
            self._sessions[session_id] = _Session(
                session_id=session_id,
                early=early,
                deadline=None if deadline_s is None else now + deadline_s,
                last_seen=now,
            )
            self._stream_note("sessions_opened")
        return session_id

    def _validate_chunk(self, chunk) -> np.ndarray:
        try:
            arr = np.asarray(chunk, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise InvalidRequestError(f"chunk is not numeric: {exc}") from exc
        if arr.ndim == 0:
            arr = arr.reshape(1)
        if arr.ndim != 1:
            raise InvalidRequestError(
                f"chunk must be scalar or 1-D, got shape {arr.shape}"
            )
        if not np.isfinite(arr).all():
            if self.config.validation == "repair":
                arr = np.where(np.isfinite(arr), arr, 0.0)
            else:
                raise InvalidRequestError(
                    "chunk contains non-finite values "
                    f"(validation={self.config.validation!r})"
                )
        return arr

    def submit_chunk(self, session_id: int, chunk) -> StreamingDecision:
        """Feed one chunk to a session; returns the current decision.

        Runs under the session's lock (chunks of one session are
        serialized; distinct sessions proceed concurrently) and the
        service's circuit breaker.
        """
        if not self._running:
            raise ServiceClosedError("service is not running; call start()")
        session = self._get_session(session_id)
        arr = self._validate_chunk(chunk)
        now = self._clock()
        if session.deadline is not None and now >= session.deadline:
            self._drop_session(session_id)
            raise DeadlineExceededError(
                f"session {session_id} exceeded its deadline"
            )
        if not self.breaker.allow():
            raise CircuitOpenError(
                "circuit breaker open; streaming chunk refused"
            )
        with session.lock:
            was_final = session.early.final
            appended_at = self._clock()
            try:
                decision = session.early.append(arr)
            except ValidationError:
                raise
            except Exception as exc:  # noqa: BLE001 - breaker accounting
                self.breaker.record_failure()
                raise RequestFailedError(
                    f"streaming chunk failed: {type(exc).__name__}: {exc}"
                ) from exc
            self.breaker.record_success()
            session.chunks += 1
            session.last_seen = self._clock()
            append_seconds = session.last_seen - appended_at
            drift_flagged = (
                not session.drift_counted
                and session.early.drift_detector is not None
                and session.early.drift_detector.drifted
            )
            if drift_flagged:
                session.drift_counted = True
        with self._sessions_lock:
            self._stream_note("chunks")
            if decision.early and not was_final:
                self._stream_note("early_emits")
            if self.metrics is not None:
                self.metrics.observe_window(
                    "streaming.append_latency_seconds", append_seconds
                )
                if drift_flagged:
                    self.metrics.counter("streaming.drift_flags")
        return decision

    def close_stream(self, session_id: int) -> StreamingDecision:
        """Close a session, returning its final decision.

        If no early/budget decision was latched, an end-of-stream
        decision is computed (requires at least one complete window).
        """
        session = self._get_session(session_id)
        with session.lock:
            decision = session.early.finalize()
        self._drop_session(session_id)
        with self._sessions_lock:
            self._stream_note("sessions_closed")
        return decision

    def _drop_session(self, session_id: int) -> None:
        with self._sessions_lock:
            self._sessions.pop(session_id, None)

    def stream_series(
        self, series, chunk_size: int = 32, **open_kwargs
    ) -> StreamingDecision:
        """Convenience: open, replay one series in chunks, close.

        Stops feeding as soon as the decision latches (the early-exit the
        subsystem exists for) and returns the final decision.
        """
        from repro.datasets.replay import iter_chunks

        session_id = self.open_stream(**open_kwargs)
        try:
            for chunk in iter_chunks(series, chunk_size):
                decision = self.submit_chunk(session_id, chunk)
                if decision.final:
                    self._drop_session(session_id)
                    return decision
            return self.close_stream(session_id)
        except BaseException:
            self._drop_session(session_id)
            raise

    # -- bookkeeping -------------------------------------------------------

    def stats(self) -> dict:
        """Batch-path counters plus the session-table counters."""
        stats = super().stats()
        with self._sessions_lock:
            stats["streaming"] = dict(self._stream_stats)
            stats["streaming"]["open_sessions"] = len(self._sessions)
        return stats

    def health_reasons(self) -> list:
        """Batch-path reasons plus session-table capacity."""
        reasons = super().health_reasons()
        with self._sessions_lock:
            open_sessions = len(self._sessions)
        cap = self.stream_config.max_sessions
        ratio = open_sessions / cap
        if ratio >= 1.0:
            reasons.append(
                HealthReason(
                    code="session_capacity",
                    severity="unhealthy",
                    detail=(
                        f"session table full ({open_sessions}/{cap}); "
                        "open_stream is refusing new sessions"
                    ),
                )
            )
        elif ratio >= QUEUE_SATURATION_DEGRADED:
            reasons.append(
                HealthReason(
                    code="session_capacity",
                    severity="degraded",
                    detail=f"session table {ratio:.0%} full ({open_sessions}/{cap})",
                )
            )
        return reasons


__all__ = ["StreamConfig", "StreamingInferenceService"]
