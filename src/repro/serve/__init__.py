"""``repro.serve``: fault-hardened online inference for frozen classifiers.

The serving layer of the reproduction (see ``docs/serving.md``), built
robustness-first around the failure modes of each piece:

* **artifacts** (:mod:`repro.serve.artifact`) — save/load a fitted
  classifier with a run-manifest-format manifest plus per-file SHA-256
  checksums; corrupt or version-mismatched artifacts are refused with
  typed errors instead of loaded on faith;
* **admission** (:mod:`repro.serve.queueing`) — a bounded queue whose
  overflow policy is explicit backpressure (``reject-newest``) or load
  shedding (``shed-oldest``);
* **execution** (:mod:`repro.serve.service`) — per-request validation
  through :mod:`repro.validation`, deadline enforcement at admission and
  kernel-batch boundaries, microbatching through the
  :mod:`repro.kernels` facade with a warm shared
  :class:`~repro.kernels.SeriesCache`;
* **resilience** — a :class:`~repro.serve.breaker.CircuitBreaker`
  around the batched path with a serial-fallback degradation ladder,
  and deterministic chaos injection
  (:mod:`repro.serve.faults`) reusing the distributed
  :class:`~repro.distributed.faults.FaultPlan` keyed by request seed.

Every failure a caller can see is a typed
:class:`~repro.exceptions.ServeError` subclass. Successful responses are
bit-identical to offline ``IPSClassifier.predict`` — degradation changes
latency and availability, never answers.
"""

from repro.serve.artifact import (
    ARTIFACT_FORMAT_VERSION,
    load_artifact,
    read_manifest,
    save_artifact,
    verify_checksums,
)
from repro.serve.breaker import CircuitBreaker
from repro.serve.faults import CORRUPT_LABEL, RequestFaultInjector
from repro.serve.queueing import SHED_POLICIES, AdmissionQueue
from repro.serve.service import (
    REQUEST_MODES,
    InferenceService,
    ServeConfig,
    ServeFuture,
)
from repro.serve.streaming import StreamConfig, StreamingInferenceService

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "AdmissionQueue",
    "CORRUPT_LABEL",
    "CircuitBreaker",
    "InferenceService",
    "REQUEST_MODES",
    "RequestFaultInjector",
    "SHED_POLICIES",
    "ServeConfig",
    "ServeFuture",
    "StreamConfig",
    "StreamingInferenceService",
    "load_artifact",
    "read_manifest",
    "save_artifact",
    "verify_checksums",
]
