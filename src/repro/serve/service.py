"""The online inference service: admission, microbatching, degradation.

Request lifecycle::

    submit ── validate (strict/repair/off) ── deadline stamped
        └─> AdmissionQueue (bounded; backpressure / load shedding)
              └─> worker thread: collect microbatch
                    ├─ drop requests already past deadline (typed error)
                    ├─ circuit breaker closed? ── batched predict through
                    │    the repro.kernels facade (warm shared SeriesCache)
                    │    └─ payload validated; corrupt/failed requests
                    │       fall through ↓, healthy ones complete
                    └─ breaker open, batch crashed, or payload corrupt:
                         serial fallback — per-request retries with
                         attempt-indexed fault decisions (the
                         RetryingExecutor recipe), deadline checked
                         before every attempt

The degradation ladder is therefore: *batched* → *serial with retries* →
*typed failure*. Every terminal state is a typed :class:`ServeError`
subclass; no request ever blocks forever (deadlines and shutdown both
complete futures), and no accepted request is silently dropped.

Determinism: predictions on the batched and serial paths go through the
same kernels (`batch_min_distance`), so every *successful* response is
bit-identical to offline ``IPSClassifier.predict`` — the chaos suite's
core invariant.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.transform import ShapeletTransform
from repro.exceptions import (
    DeadlineExceededError,
    InvalidRequestError,
    NotFittedError,
    RequestFailedError,
    RequestSheddedError,
    ServiceClosedError,
    ValidationError,
)
from repro.kernels import SeriesCache, warn_deprecated_once
from repro.obs.telemetry import HealthReason, HealthReport
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serve.faults import CORRUPT_LABEL, RequestFaultInjector
from repro.serve.queueing import SHED_POLICIES, AdmissionQueue
from repro.validation import pad_or_truncate, validate_series
from repro.validation.contracts import VALIDATION_MODES

#: Request output modes: a label, a probability row, or a decision row.
REQUEST_MODES: tuple[str, ...] = ("label", "proba", "scores")

#: Queue fill ratio at which ``health()`` reports ``queue_saturation``
#: as degraded; at 1.0 (requests being rejected/shed) it is unhealthy.
QUEUE_SATURATION_DEGRADED = 0.8

#: Numeric encoding of breaker states for the ``serve.breaker_state``
#: gauge (Prometheus gauges are numbers): closed=0, half-open=1, open=2.
BREAKER_STATE_GAUGE = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one :class:`InferenceService` instance.

    Attributes
    ----------
    queue_depth:
        Admission-queue bound — the backpressure knob.
    shed_policy:
        ``"reject-newest"`` or ``"shed-oldest"`` (see
        :mod:`repro.serve.queueing`).
    max_batch:
        Microbatch width: how many waiting requests one kernel pass
        serves.
    batch_wait_s:
        How long an idle worker blocks waiting for work before looping
        (also bounds shutdown latency).
    default_deadline_s:
        Deadline applied when a request does not carry one; ``None``
        means no deadline.
    validation:
        Per-request data-contract mode: ``"strict"``, ``"repair"``, or
        ``"off"``.
    n_workers:
        Worker threads draining the queue.
    breaker_threshold, breaker_reset_s:
        Circuit-breaker trip streak and open-state cool-down.
    serial_retries:
        Extra attempts each request gets on the serial fallback path.
    cache_max_entries:
        The warm shared :class:`SeriesCache` is cleared once it holds
        this many entries — request matrices are transient, and an
        identity-keyed cache would otherwise grow without bound.
    """

    queue_depth: int = 64
    shed_policy: str = "reject-newest"
    max_batch: int = 16
    batch_wait_s: float = 0.01
    default_deadline_s: float | None = None
    validation: str = "repair"
    n_workers: int = 1
    breaker_threshold: int = 3
    breaker_reset_s: float = 0.05
    serial_retries: int = 2
    cache_max_entries: int = 512

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValidationError("queue_depth must be >= 1")
        if self.shed_policy not in SHED_POLICIES:
            raise ValidationError(
                f"unknown shed_policy {self.shed_policy!r}"
            )
        if self.max_batch < 1:
            raise ValidationError("max_batch must be >= 1")
        if self.batch_wait_s <= 0:
            raise ValidationError("batch_wait_s must be > 0")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ValidationError("default_deadline_s must be > 0 when set")
        if self.validation not in VALIDATION_MODES:
            raise ValidationError(
                f"unknown validation mode {self.validation!r}"
            )
        if self.n_workers < 1:
            raise ValidationError("n_workers must be >= 1")
        if self.serial_retries < 0:
            raise ValidationError("serial_retries must be >= 0")
        if self.cache_max_entries < 1:
            raise ValidationError("cache_max_entries must be >= 1")


class ServeFuture:
    """Completion handle of one submitted request.

    Completed exactly once (first writer wins); :meth:`result` either
    returns the predicted label or raises the request's typed error.
    """

    __slots__ = ("_event", "_value", "_error", "request_id", "latency")

    def __init__(self, request_id: int) -> None:
        self._event = threading.Event()
        self._value = None
        self._error: BaseException | None = None
        self.request_id = request_id
        #: Seconds from submit to completion (set by the service).
        self.latency: float | None = None

    def done(self) -> bool:
        """Whether the request has completed (either way)."""
        return self._event.is_set()

    def result(self, timeout: float | None = None):
        """Block for the outcome: the predicted label, or a typed raise."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} still pending after {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._value

    def error(self) -> BaseException | None:
        """The stored error after completion, if any (non-blocking)."""
        return self._error


@dataclass
class _Request:
    """Internal queue entry: one validated series plus its bookkeeping."""

    request_id: int
    seed: int
    series: np.ndarray
    deadline: float | None
    future: ServeFuture
    submitted_at: float = 0.0
    attempts: int = 0
    #: What the caller asked for: ``"label"`` (predict), ``"proba"``
    #: (predict_proba row), or ``"scores"`` (decision_function row).
    mode: str = "label"


class InferenceService:
    """Low-latency serving wrapper around a frozen, fitted classifier.

    Parameters
    ----------
    classifier:
        A fitted :class:`~repro.core.pipeline.IPSClassifier` (typically
        from :func:`repro.serve.load_artifact`).
    config:
        :class:`ServeConfig`; defaults are sized for tests/benchmarks.
    fault_plan:
        Optional :class:`~repro.distributed.faults.FaultPlan` — wraps
        both execution paths with deterministic per-request fault
        injection (the chaos-test substrate).
    clock:
        Monotonic clock, injectable for deterministic deadline tests.
    metrics:
        Optional shared :class:`~repro.obs.metrics.MetricsRegistry`.
        When set, the service publishes live ``serve.*`` counters,
        gauges, and sliding-window latency histograms (the catalog in
        ``docs/observability.md``); when ``None`` (the default, the
        ``observability="off"`` contract) every instrumentation branch
        is skipped and the request path does no extra work.
    slo:
        Optional :class:`~repro.obs.telemetry.SLOTracker` fed one
        (latency, error) sample per completed request; its burn feeds
        :meth:`health` and ``/healthz``.
    """

    def __init__(
        self,
        classifier,
        config: ServeConfig | None = None,
        fault_plan=None,
        clock=time.monotonic,
        *,
        metrics=None,
        slo=None,
    ) -> None:
        if (
            getattr(classifier, "_svm", None) is None
            or getattr(classifier, "_scaler", None) is None
            or getattr(classifier, "_dataset", None) is None
            or not getattr(classifier, "shapelets_", None)
        ):
            raise NotFittedError("InferenceService needs a fitted classifier")
        self.classifier = classifier
        self.config = config or ServeConfig()
        self._clock = clock
        self.metrics = metrics
        self.slo = slo
        self._injector = (
            RequestFaultInjector(fault_plan) if fault_plan is not None else None
        )
        dataset = classifier._dataset
        self.series_length: int = dataset.series_length
        self._classes = np.asarray(dataset.classes_, dtype=np.int64)
        # Warm shared cache + a service-owned transform bound to it: the
        # same shapelet objects and classifier weights as offline predict,
        # so responses stay bit-identical while window stats/FFTs of each
        # microbatch are computed once per batch, not once per shapelet.
        self._cache = SeriesCache()
        base_transform = classifier._transform
        self._transform = ShapeletTransform(
            classifier.shapelets_,
            metric=getattr(base_transform, "metric", "euclidean"),
            dtw_band=getattr(base_transform, "dtw_band", 5),
            cache=self._cache,
        )
        self.queue = AdmissionQueue(
            self.config.queue_depth, self.config.shed_policy
        )
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            reset_after=self.config.breaker_reset_s,
            clock=clock,
        )
        self._lock = threading.Lock()
        self._workers: list[threading.Thread] = []
        self._running = False
        self._next_id = 0
        self._stats = {
            "submitted": 0,
            "completed": 0,
            "invalid": 0,
            "expired": 0,
            "shed": 0,
            "rejected": 0,
            "failed": 0,
            "serial_fallbacks": 0,
            "batches": 0,
        }

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "InferenceService":
        """Spawn the worker threads (idempotent)."""
        with self._lock:
            if self._running:
                return self
            self._running = True
            self._workers = [
                threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-serve-{i}",
                    daemon=True,
                )
                for i in range(self.config.n_workers)
            ]
            for worker in self._workers:
                worker.start()
        return self

    def stop(self) -> None:
        """Stop accepting work, fail pending requests, join the workers."""
        with self._lock:
            if not self._running:
                return
            self._running = False
        self.queue.close()
        for request in self.queue.drain():
            self._complete(
                request,
                error=ServiceClosedError(
                    "service stopped before the request was served"
                ),
            )
        for worker in self._workers:
            worker.join(timeout=5.0)
        self._workers = []

    def __enter__(self) -> "InferenceService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        """Whether the worker pool is live."""
        return self._running

    # -- request path -----------------------------------------------------

    def _validate_request(self, series) -> np.ndarray:
        """Apply the per-request data contracts; typed errors on refusal."""
        mode = self.config.validation
        try:
            arr = np.asarray(series, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise InvalidRequestError(f"request is not numeric: {exc}") from exc
        if arr.ndim != 1:
            raise InvalidRequestError(
                f"request series must be 1-D, got shape {arr.shape}"
            )
        if arr.size == 0:
            raise InvalidRequestError("request series is empty")
        if mode == "off":
            if arr.size != self.series_length:
                raise InvalidRequestError(
                    f"request length {arr.size} != model series length "
                    f"{self.series_length} (validation is off; no repair)"
                )
            if not np.isfinite(arr).all():
                raise InvalidRequestError(
                    "request contains non-finite values (validation is off)"
                )
            return arr.copy()
        try:
            arr, _report = validate_series(arr, mode=mode, name="request")
        except ValidationError as exc:
            raise InvalidRequestError(str(exc)) from exc
        if arr.size != self.series_length:
            if mode == "strict":
                raise InvalidRequestError(
                    f"request length {arr.size} != model series length "
                    f"{self.series_length}"
                )
            arr = pad_or_truncate(arr, self.series_length)
        return arr

    def submit(
        self,
        series,
        deadline_s: float | None = None,
        *,
        seed: int | None = None,
        mode: str = "label",
    ) -> ServeFuture:
        """Validate and enqueue one series; returns its future.

        Admission-time refusals raise typed errors synchronously:
        :class:`InvalidRequestError`, :class:`QueueFullError`,
        :class:`DeadlineExceededError` (non-positive deadline), and
        :class:`ServiceClosedError`. Requests evicted later by the
        shed-oldest policy see :class:`RequestSheddedError` through
        their future.
        """
        if not self._running:
            raise ServiceClosedError("service is not running; call start()")
        if mode not in REQUEST_MODES:
            raise InvalidRequestError(
                f"unknown request mode {mode!r}; choose from {REQUEST_MODES}"
            )
        now = self._clock()
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        if deadline_s is not None and deadline_s <= 0:
            self._count("expired")
            raise DeadlineExceededError(
                f"deadline {deadline_s}s already expired at admission"
            )
        try:
            arr = self._validate_request(series)
        except InvalidRequestError:
            self._count("invalid")
            raise
        with self._lock:
            request_id = self._next_id
            self._next_id += 1
        request = _Request(
            request_id=request_id,
            seed=request_id if seed is None else seed,
            series=arr,
            deadline=None if deadline_s is None else now + deadline_s,
            future=ServeFuture(request_id),
            submitted_at=now,
            mode=mode,
        )
        try:
            shed = self.queue.put(request)
        except Exception:
            self._count("rejected")
            raise
        self._count("submitted")
        for victim in shed:
            self._count("shed")
            self._complete(
                victim,
                error=RequestSheddedError(
                    f"request {victim.request_id} shed under overload "
                    "(shed-oldest policy)"
                ),
            )
        return request.future

    @property
    def classes_(self) -> np.ndarray:
        """Original-valued class labels of the served model, sorted."""
        return self._classes

    def predict_one(self, series, deadline_s: float | None = None):
        """Blocking single-series convenience: submit one row and wait."""
        return self.submit(series, deadline_s).result()

    def predict(self, X, deadline_s: float | None = None):
        """Predict labels for every row of ``X``; ``(M,)`` int64.

        The :class:`repro.types.Predictor` surface: takes a 2-D matrix,
        returns one label per row, and raises the first request's typed
        error on failure (use :meth:`predict_many` for per-row outcomes).
        A 1-D input is the pre-streaming single-series signature — it
        still works (returning a scalar) but warns ``DeprecationWarning``
        once per process; call :meth:`predict_one` instead.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            warn_deprecated_once(
                "InferenceService.predict(series) with a 1-D series",
                "predict_one (or a 2-D matrix for the Predictor protocol)",
            )
            return self.predict_one(X, deadline_s)
        futures = [self.submit(row, deadline_s) for row in X]
        return np.asarray(
            [future.result() for future in futures], dtype=np.int64
        )

    def _gather_rows(self, X, deadline_s, mode: str) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        futures = [self.submit(row, deadline_s, mode=mode) for row in X]
        rows = [np.asarray(future.result(), dtype=np.float64) for future in futures]
        return (
            np.vstack(rows)
            if rows
            else np.empty((0, self._classes.size), dtype=np.float64)
        )

    def predict_proba(self, X, deadline_s: float | None = None) -> np.ndarray:
        """Per-class probabilities, ``(M, C)`` in :attr:`classes_` order.

        Served through the same admission/deadline/breaker ladder as
        :meth:`predict` — score requests degrade (and fail) identically.
        """
        return self._gather_rows(X, deadline_s, "proba")

    def decision_function(self, X, deadline_s: float | None = None) -> np.ndarray:
        """Per-class decision values, ``(M, C)`` in :attr:`classes_` order."""
        return self._gather_rows(X, deadline_s, "scores")

    def predict_many(self, X, deadline_s: float | None = None) -> list:
        """Submit every row of ``X``; returns ``(label | None, error | None)``
        pairs in row order, never raising for per-request failures."""
        futures = []
        for row in np.asarray(X, dtype=np.float64):
            try:
                futures.append(self.submit(row, deadline_s))
            except Exception as exc:  # noqa: BLE001 - admission refusals are data
                futures.append(exc)
        out = []
        for item in futures:
            if isinstance(item, BaseException):
                out.append((None, item))
                continue
            try:
                out.append((item.result(), None))
            except Exception as exc:  # noqa: BLE001
                out.append((None, exc))
        return out

    # -- worker side ------------------------------------------------------

    def _worker_loop(self) -> None:
        while self._running:
            batch = self.queue.get_batch(
                self.config.max_batch, self.config.batch_wait_s
            )
            if not batch:
                continue
            try:
                self._process_batch(batch)
            except Exception as exc:  # noqa: BLE001 - the loop must survive
                for request in batch:
                    self._complete(
                        request,
                        error=RequestFailedError(
                            f"internal serving failure: "
                            f"{type(exc).__name__}: {exc}"
                        ),
                    )

    def _expire_due(self, requests: list) -> list:
        """Complete past-deadline requests; returns the still-live rest."""
        now = self._clock()
        live = []
        for request in requests:
            if request.deadline is not None and now >= request.deadline:
                self._count("expired")
                self._complete(
                    request,
                    error=DeadlineExceededError(
                        f"request {request.request_id} missed its deadline "
                        "before execution"
                    ),
                )
            else:
                live.append(request)
        return live

    def _process_batch(self, batch: list) -> None:
        self._count("batches")
        if self.metrics is not None:
            self._observe_batch(batch)
        live = self._expire_due(batch)
        if not live:
            return
        serial: list = []
        if self.breaker.allow():
            try:
                payloads = self._run_batched(live)
            except Exception:  # noqa: BLE001 - batch death = worker failure
                self.breaker.record_failure()
                serial = live
            else:
                corrupt = [
                    self._payload_corrupt(request, payload)
                    for request, payload in zip(live, payloads)
                ]
                if any(corrupt):
                    self.breaker.record_failure()
                else:
                    self.breaker.record_success()
                for request, payload, bad in zip(live, payloads, corrupt):
                    if bad:
                        serial.append(request)
                    else:
                        self._count("completed")
                        self._complete(request, value=payload)
        else:
            serial = live
        for request in serial:
            self._count("serial_fallbacks")
            self._serve_serial(request)

    def _predict_matrix(self, X: np.ndarray) -> np.ndarray:
        """The offline-identical kernel path for one microbatch."""
        if len(self._cache) > self.config.cache_max_entries:
            self._cache.clear()
        classifier = self.classifier
        features = classifier._scaler.transform(self._transform.transform(X))
        internal = classifier._svm.predict(features)
        return self._classes[internal]

    def _compute_matrix(self, X: np.ndarray, mode: str) -> np.ndarray:
        """One microbatch through the kernel path in the requested mode.

        ``label`` goes through :meth:`_predict_matrix` (the historical —
        and chaos-test-interceptable — hook); score modes run the inner
        classifier's Predictor surface on the same features.
        """
        if mode == "label":
            return self._predict_matrix(X)
        if len(self._cache) > self.config.cache_max_entries:
            self._cache.clear()
        classifier = self.classifier
        features = classifier._scaler.transform(self._transform.transform(X))
        method = "predict_proba" if mode == "proba" else "decision_function"
        return np.asarray(
            getattr(classifier._svm, method)(features), dtype=np.float64
        )

    def _payload_corrupt(self, request, payload) -> bool:
        """Payload validation: the corrupt-response detector per mode."""
        if request.mode == "label":
            return not np.isin(payload, self._classes)
        payload = np.asarray(payload)
        return payload.shape != (self._classes.size,) or not np.isfinite(
            payload
        ).all()

    def _corrupted_payload(self, request):
        """What a corrupted response looks like in the request's mode."""
        if request.mode == "label":
            return CORRUPT_LABEL
        return np.full(self._classes.size, np.nan)

    def _run_batched(self, requests: list) -> list:
        """One kernel pass over the microbatch, with fault hooks applied.

        Returns one payload per request (a label, or a score row for the
        ``proba``/``scores`` modes); mixed-mode batches share the single
        transform pass through per-mode sub-batches.
        """
        attempt = 0
        if self._injector is not None:
            # A crash/hang anywhere in the batch takes the whole batch
            # down, exactly like a worker process dying mid-request.
            for request in requests:
                self._injector.pre_compute(request.seed, attempt)
        for request in requests:
            request.attempts += 1
        payloads: list = [None] * len(requests)
        for mode in {request.mode for request in requests}:
            indices = [
                i for i, request in enumerate(requests) if request.mode == mode
            ]
            X = np.vstack([requests[i].series for i in indices])
            out = self._compute_matrix(X, mode)
            for row, i in enumerate(indices):
                payloads[i] = out[row]
        if self._injector is not None:
            for i, request in enumerate(requests):
                if self._injector.corrupts(request.seed, attempt):
                    payloads[i] = self._corrupted_payload(request)
        return payloads

    def _serve_serial(self, request) -> None:
        """Degraded path: one request at a time, bounded retries.

        The RetryingExecutor recipe applied to serving: per-attempt
        exception capture, attempt-indexed fault decisions (so injected
        faults are transient), payload validation, and the deadline
        checked before every attempt.
        """
        last_error = "batched path failed"
        for attempt in range(1, self.config.serial_retries + 2):
            now = self._clock()
            if request.deadline is not None and now >= request.deadline:
                self._count("expired")
                self._complete(
                    request,
                    error=DeadlineExceededError(
                        f"request {request.request_id} missed its deadline "
                        f"after {request.attempts} attempt(s)"
                    ),
                )
                return
            request.attempts += 1
            try:
                if self._injector is not None:
                    self._injector.pre_compute(request.seed, attempt)
                prediction = self._compute_matrix(
                    request.series.reshape(1, -1), request.mode
                )[0]
                if self._injector is not None and self._injector.corrupts(
                    request.seed, attempt
                ):
                    prediction = self._corrupted_payload(request)
            except Exception as exc:  # noqa: BLE001 - retryable by design
                last_error = f"{type(exc).__name__}: {exc}"
                continue
            if self._payload_corrupt(request, prediction):
                last_error = "corrupt payload (response failed validation)"
                continue
            self._count("completed")
            self._complete(request, value=prediction)
            return
        self._count("failed")
        self._complete(
            request,
            error=RequestFailedError(
                f"request {request.request_id} failed after "
                f"{request.attempts} attempt(s); last error: {last_error}"
            ),
        )

    # -- bookkeeping ------------------------------------------------------

    def _complete(self, request, value=None, error=None) -> None:
        future = request.future
        if future.done():
            return
        future.latency = self._clock() - request.submitted_at
        future._value = value
        future._error = error
        future._event.set()
        if self.metrics is not None:
            with self._lock:
                self.metrics.observe_window(
                    "serve.request_latency_seconds", future.latency
                )
        if self.slo is not None:
            self.slo.record(future.latency, error=error is not None)

    def _count(self, key: str, n: int = 1) -> None:
        with self._lock:
            self._stats[key] += n
            # Mirrored under the same lock: the registry itself is not
            # synchronized, and chaos tests reconcile these totals.
            if self.metrics is not None:
                self.metrics.counter(f"serve.{key}", n)

    def _observe_batch(self, batch: list) -> None:
        """Per-microbatch telemetry (only called when a registry is set)."""
        now = self._clock()
        with self._lock:
            metrics = self.metrics
            metrics.observe_window("serve.batch_size", len(batch))
            for request in batch:
                metrics.observe_window(
                    "serve.admission_wait_seconds", now - request.submitted_at
                )
            metrics.gauge("serve.queue_depth", len(self.queue))
            metrics.gauge(
                "serve.breaker_state", BREAKER_STATE_GAUGE[self.breaker.state]
            )

    def stats(self) -> dict:
        """Aggregate service / queue / breaker counters."""
        with self._lock:
            stats = dict(self._stats)
        stats["queue"] = self.queue.stats()
        stats["breaker"] = self.breaker.stats()
        stats["cache_entries"] = len(self._cache)
        if self.slo is not None:
            stats["slo"] = self.slo.snapshot()
        return stats

    def health_reasons(self) -> list:
        """Typed degraded/unhealthy reasons for the current state."""
        reasons: list[HealthReason] = []
        if not self._running:
            reasons.append(
                HealthReason(
                    code="service_stopped",
                    severity="unhealthy",
                    detail="worker pool is not running",
                )
            )
        state = self.breaker.state
        if state == OPEN:
            reasons.append(
                HealthReason(
                    code="breaker_open",
                    severity="unhealthy",
                    detail="batched path tripped; serving serial fallback only",
                )
            )
        elif state == HALF_OPEN:
            reasons.append(
                HealthReason(
                    code="breaker_half_open",
                    severity="degraded",
                    detail="probing the batched path after an open period",
                )
            )
        waiting = len(self.queue)
        ratio = waiting / self.config.queue_depth
        if ratio >= 1.0:
            reasons.append(
                HealthReason(
                    code="queue_saturation",
                    severity="unhealthy",
                    detail=(
                        f"admission queue full ({waiting}/"
                        f"{self.config.queue_depth}); requests are being "
                        f"{'shed' if self.config.shed_policy == 'shed-oldest' else 'rejected'}"
                    ),
                )
            )
        elif ratio >= QUEUE_SATURATION_DEGRADED:
            reasons.append(
                HealthReason(
                    code="queue_saturation",
                    severity="degraded",
                    detail=(
                        f"admission queue {ratio:.0%} full "
                        f"({waiting}/{self.config.queue_depth})"
                    ),
                )
            )
        if self.slo is not None:
            reasons.extend(self.slo.reasons())
        return reasons

    def health(self) -> HealthReport:
        """Aggregate :class:`HealthReport` — what ``/healthz`` serves."""
        return HealthReport.from_reasons(self.health_reasons())


__all__ = [
    "BREAKER_STATE_GAUGE",
    "InferenceService",
    "QUEUE_SATURATION_DEGRADED",
    "REQUEST_MODES",
    "ServeConfig",
    "ServeFuture",
]
