"""Circuit breaker around the batched worker path.

Standard three-state breaker (Nygard's *Release It!* pattern),
deterministic and clock-injectable so chaos tests can drive every
transition without real sleeps:

* **closed** — requests flow; ``failure_threshold`` *consecutive*
  failures trip it open (a single success resets the streak);
* **open** — the batched path is skipped entirely for
  ``reset_after`` seconds (the service degrades to its serial
  fallback), after which the next request becomes a half-open probe;
* **half-open** — exactly one probe is allowed through; success closes
  the breaker, failure re-opens it and restarts the cool-down.

All methods are thread-safe; the breaker never raises — refusal is a
``False`` from :meth:`allow`, and the service decides what refusal means
(here: degrade, don't drop).
"""

from __future__ import annotations

import threading
import time

from repro.exceptions import ValidationError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with a timed half-open probe schedule."""

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_after: float = 0.1,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValidationError("failure_threshold must be >= 1")
        if reset_after < 0:
            raise ValidationError("reset_after must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self._times_opened = 0

    @property
    def state(self) -> str:
        """Current state, advancing ``open -> half-open`` if due."""
        with self._lock:
            self._advance()
            return self._state

    def _advance(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.reset_after
        ):
            self._state = HALF_OPEN
            self._probe_in_flight = False

    def allow(self) -> bool:
        """Whether the next batched attempt may proceed.

        In half-open state, only one caller at a time gets a ``True``
        (the probe); everyone else is refused until the probe reports.
        """
        with self._lock:
            self._advance()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        """A batched attempt succeeded: close and reset the streak."""
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0
            self._probe_in_flight = False

    def record_failure(self) -> None:
        """A batched attempt failed: count it, trip if the streak is full.

        A half-open probe failure re-opens immediately regardless of the
        threshold — the probe existed to answer exactly this question.
        """
        with self._lock:
            self._advance()
            self._consecutive_failures += 1
            if (
                self._state == HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = self._clock()
                self._probe_in_flight = False
                self._times_opened += 1

    def stats(self) -> dict:
        """Snapshot for the service's stats endpoint."""
        with self._lock:
            self._advance()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "times_opened": self._times_opened,
            }


__all__ = ["CLOSED", "HALF_OPEN", "OPEN", "CircuitBreaker"]
