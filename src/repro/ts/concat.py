"""Concatenation of time-series instances with junction bookkeeping.

Both the MP baseline (Formula 4) and the instance profile (Def. 8) work on
*concatenated* series: several instances glued into one long series.
Concatenation creates artificial subsequences spanning the junction between
two instances; those windows exist in the long series but in no real
instance, so profile computations must skip them. The paper does not spell
this out; :class:`ConcatenatedSeries` makes it explicit by recording, for
each window length, which window start positions cross a junction, and by
mapping long-series positions back to ``(instance, offset)`` provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import LengthError, ValidationError
from repro.ts.windows import num_windows


@dataclass
class ConcatenatedSeries:
    """One long series formed from several instances, with provenance.

    Attributes
    ----------
    values:
        The concatenated series.
    boundaries:
        Start offset of each instance inside :attr:`values` plus a final
        sentinel equal to the total length; instance ``i`` occupies
        ``values[boundaries[i]:boundaries[i+1]]``.
    instance_ids:
        Caller-provided identifier for each concatenated instance (e.g. its
        row index in the training set).
    """

    values: np.ndarray
    boundaries: np.ndarray
    instance_ids: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        self.boundaries = np.asarray(self.boundaries, dtype=np.int64)
        if self.boundaries[0] != 0 or self.boundaries[-1] != self.values.size:
            raise ValidationError("boundaries must start at 0 and end at len(values)")
        if np.any(np.diff(self.boundaries) <= 0):
            raise ValidationError("boundaries must be strictly increasing")
        if self.instance_ids is None:
            self.instance_ids = np.arange(self.n_instances, dtype=np.int64)
        else:
            self.instance_ids = np.asarray(self.instance_ids, dtype=np.int64)
            if self.instance_ids.size != self.n_instances:
                raise ValidationError(
                    "instance_ids length must match the number of instances"
                )

    @property
    def n_instances(self) -> int:
        """Number of concatenated instances."""
        return int(self.boundaries.size - 1)

    def __len__(self) -> int:
        return int(self.values.size)

    def valid_window_mask(self, window: int) -> np.ndarray:
        """Boolean mask over window starts: True where the window stays inside one instance.

        A window starting at position ``p`` is valid iff ``p`` and
        ``p + window - 1`` fall in the same instance.
        """
        n_out = num_windows(self.values.size, window)
        starts = np.arange(n_out)
        # Instance index of a position p: searchsorted on the boundary list.
        start_inst = np.searchsorted(self.boundaries, starts, side="right") - 1
        end_inst = np.searchsorted(self.boundaries, starts + window - 1, side="right") - 1
        return start_inst == end_inst

    def locate(self, position: int, window: int) -> tuple[int, int]:
        """Map a window start in the long series to ``(instance_id, offset)``.

        Raises :class:`LengthError` when the window crosses a junction.
        """
        if not 0 <= position <= self.values.size - window:
            raise LengthError(
                f"position {position} with window {window} outside series "
                f"of length {self.values.size}"
            )
        inst = int(np.searchsorted(self.boundaries, position, side="right")) - 1
        end_inst = (
            int(np.searchsorted(self.boundaries, position + window - 1, side="right"))
            - 1
        )
        if inst != end_inst:
            raise LengthError(
                f"window at position {position} crosses the junction between "
                f"instances {inst} and {end_inst}"
            )
        offset = position - int(self.boundaries[inst])
        return int(self.instance_ids[inst]), offset

    def instance_of_position(self, position: int) -> int:
        """Index (0-based, local) of the instance containing ``position``."""
        if not 0 <= position < self.values.size:
            raise LengthError(f"position {position} outside series")
        return int(np.searchsorted(self.boundaries, position, side="right")) - 1


def concatenate_series(
    instances: np.ndarray | list[np.ndarray],
    instance_ids: np.ndarray | None = None,
) -> ConcatenatedSeries:
    """Concatenate instances into one long series (the paper's ``T_C``).

    Parameters
    ----------
    instances:
        Either an ``(M, N)`` matrix or a list of 1-D arrays (lengths may
        differ).
    instance_ids:
        Optional identifiers carried into :attr:`ConcatenatedSeries.instance_ids`.
    """
    arrays = [np.asarray(inst, dtype=np.float64).ravel() for inst in instances]
    if not arrays:
        raise ValidationError("cannot concatenate zero instances")
    for i, arr in enumerate(arrays):
        if arr.size == 0:
            raise ValidationError(f"instance {i} is empty")
    lengths = np.array([arr.size for arr in arrays], dtype=np.int64)
    boundaries = np.concatenate([[0], np.cumsum(lengths)])
    return ConcatenatedSeries(
        values=np.concatenate(arrays),
        boundaries=boundaries,
        instance_ids=instance_ids,
    )
