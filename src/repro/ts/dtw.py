"""Dynamic time warping with optional Sakoe-Chiba band, plus LB_Keogh.

Used by the 1NN-DTW baseline (the paper's DTW_Rn_1NN column in Table VI).
The implementation is a row-vectorized O(N^2) dynamic program; the
Sakoe-Chiba ``band`` restricts warping to a diagonal corridor, and
:func:`lb_keogh` provides the classic lower bound used to skip full DTW
computations during nearest-neighbour search.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError


def dtw_distance(
    a: np.ndarray, b: np.ndarray, band: int | None = None
) -> float:
    """DTW distance (square root of accumulated squared costs) between two series.

    Parameters
    ----------
    a, b:
        1-D series; lengths may differ.
    band:
        Sakoe-Chiba band half-width in samples. ``None`` means unconstrained.
        A band of 0 degrades to (resampled) Euclidean alignment along the
        diagonal. When lengths differ, the band is measured around the
        scaled diagonal.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 1 or b.ndim != 1 or a.size == 0 or b.size == 0:
        raise ValidationError("dtw_distance expects non-empty 1-D arrays")
    if band is not None and band < 0:
        raise ValidationError(f"band must be >= 0, got {band}")
    n, m = a.size, b.size
    # Ensure a is the shorter series so the row loop is over the short side.
    if n > m:
        a, b, n, m = b, a, m, n
    inf = np.inf
    prev = np.full(m + 1, inf)
    prev[0] = 0.0
    curr = np.empty(m + 1)
    scale = m / n
    for i in range(1, n + 1):
        curr[:] = inf
        if band is None:
            lo, hi = 1, m
        else:
            center = i * scale
            lo = max(1, int(np.floor(center - band)))
            hi = min(m, int(np.ceil(center + band)))
            if lo > hi:
                lo, hi = max(1, min(lo, m)), max(1, min(hi, m))
        cost = (b[lo - 1 : hi] - a[i - 1]) ** 2
        # curr[j] = cost + min(prev[j], prev[j-1], curr[j-1]); the curr[j-1]
        # term is sequential, so run it as a tight scalar loop over the band.
        prev_j = prev[lo : hi + 1]
        prev_jm1 = prev[lo - 1 : hi]
        best_two = np.minimum(prev_j, prev_jm1)
        running = curr[lo - 1]
        for idx in range(hi - lo + 1):
            running = cost[idx] + min(best_two[idx], running)
            curr[lo + idx] = running
        prev, curr = curr, prev
    total = prev[m]
    if not np.isfinite(total):
        raise ValidationError(
            "DTW band too narrow: no warping path fits the corridor"
        )
    return float(np.sqrt(total))


def lb_keogh(query: np.ndarray, candidate: np.ndarray, band: int) -> float:
    """LB_Keogh lower bound on the DTW distance between equal-length series.

    Builds the upper/lower envelope of ``candidate`` with half-width
    ``band`` and accumulates the squared exceedance of ``query`` outside the
    envelope. Guaranteed ``lb_keogh(q, c, r) <= dtw_distance(q, c, band=r)``
    for equal lengths.
    """
    query = np.asarray(query, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if query.shape != candidate.shape:
        raise ValidationError("lb_keogh requires equal-length series")
    if band < 0:
        raise ValidationError(f"band must be >= 0, got {band}")
    n = candidate.size
    upper = np.empty(n)
    lower = np.empty(n)
    for i in range(n):
        lo = max(0, i - band)
        hi = min(n, i + band + 1)
        window = candidate[lo:hi]
        upper[i] = window.max()
        lower[i] = window.min()
    above = np.maximum(query - upper, 0.0)
    below = np.maximum(lower - query, 0.0)
    return float(np.sqrt(np.sum(above * above + below * below)))
