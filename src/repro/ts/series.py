"""Containers and validation for time series and labelled datasets.

Following the paper's Definitions 1-3: a time series ``T`` is an ordered
sequence of real values of length ``N``; a dataset ``D`` is a set of ``M``
series, each with a class label from ``C = {0, 1, ..., |C|-1}``.

UCR-archive datasets are equal-length, so :class:`Dataset` stores the series
as a dense ``(M, N)`` float matrix. Labels are remapped to a contiguous
``0..|C|-1`` range on construction, with the original labels kept for
round-tripping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError


def validate_series(series: np.ndarray, name: str = "series") -> np.ndarray:
    """Coerce ``series`` to a 1-D float64 array and validate it.

    Raises :class:`ValidationError` when the array is not 1-D, is empty, or
    contains non-finite values.
    """
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    return arr


def validate_series_matrix(matrix: np.ndarray, name: str = "X") -> np.ndarray:
    """Coerce ``matrix`` to a 2-D ``(M, N)`` float64 array and validate it."""
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-D (M, N), got shape {arr.shape}")
    if arr.shape[0] == 0 or arr.shape[1] == 0:
        raise ValidationError(f"{name} must have at least one series and one value")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    return arr


def validate_labels(labels: np.ndarray, n_series: int) -> np.ndarray:
    """Coerce ``labels`` to a 1-D int array of length ``n_series``."""
    arr = np.asarray(labels)
    if arr.ndim != 1:
        raise ValidationError(f"labels must be 1-D, got shape {arr.shape}")
    if arr.shape[0] != n_series:
        raise ValidationError(
            f"labels length {arr.shape[0]} does not match number of series {n_series}"
        )
    try:
        out = arr.astype(np.int64)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"labels must be integer-like: {exc}") from exc
    if arr.dtype.kind == "f" and not np.array_equal(arr, out):
        raise ValidationError("labels must be integer-valued")
    return out


@dataclass
class Dataset:
    """A labelled, equal-length time-series dataset (the paper's ``D``).

    Parameters
    ----------
    X:
        ``(M, N)`` matrix of M series of length N.
    y:
        Length-``M`` integer label vector. Arbitrary integer labels are
        accepted and remapped to ``0..|C|-1``; the mapping is stored in
        :attr:`classes_` (original label for each internal index).
    name:
        Optional dataset name, carried through for reporting.
    """

    X: np.ndarray
    y: np.ndarray
    name: str = ""
    classes_: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.X = validate_series_matrix(self.X)
        raw = validate_labels(self.y, self.X.shape[0])
        self.classes_, self.y = np.unique(raw, return_inverse=True)
        self.y = self.y.astype(np.int64)

    @property
    def n_series(self) -> int:
        """Number of series ``M``."""
        return int(self.X.shape[0])

    @property
    def series_length(self) -> int:
        """Common series length ``N``."""
        return int(self.X.shape[1])

    @property
    def n_classes(self) -> int:
        """Number of distinct classes ``|C|``."""
        return int(self.classes_.size)

    @property
    def labels(self) -> np.ndarray:
        """The internal ``0..|C|-1`` label vector (alias of :attr:`y`)."""
        return self.y

    def class_indices(self, label: int) -> np.ndarray:
        """Row indices of all series with internal label ``label``."""
        if not 0 <= label < self.n_classes:
            raise ValidationError(
                f"label {label} out of range for {self.n_classes} classes"
            )
        return np.flatnonzero(self.y == label)

    def series_of_class(self, label: int) -> np.ndarray:
        """All series of internal class ``label`` (the paper's ``D_C``)."""
        return self.X[self.class_indices(label)]

    def original_label(self, label: int) -> int:
        """Map an internal label back to the original label value."""
        return int(self.classes_[label])

    def __len__(self) -> int:
        return self.n_series

    def __iter__(self):
        return iter(self.X)

    def subset(self, indices: np.ndarray) -> "Dataset":
        """A new :class:`Dataset` with only the given rows.

        Labels are re-expressed in original values so the subset remaps
        consistently (a subset may lose classes).
        """
        indices = np.asarray(indices)
        return Dataset(
            X=self.X[indices],
            y=self.classes_[self.y[indices]],
            name=self.name,
        )

    def describe(self) -> str:
        """Human-readable one-line summary."""
        counts = np.bincount(self.y, minlength=self.n_classes)
        parts = ", ".join(
            f"{self.original_label(c)}:{counts[c]}" for c in range(self.n_classes)
        )
        label = self.name or "<unnamed>"
        return (
            f"Dataset({label}: M={self.n_series}, N={self.series_length}, "
            f"classes={{{parts}}})"
        )
