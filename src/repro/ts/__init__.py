"""Time-series primitives: containers, preprocessing, windows, distances, DTW.

This subpackage is the lowest layer of the reproduction. Everything above it
(matrix profile, instance profile, DABF, baselines) is written against these
functions, which follow the paper's notation: a time series ``T`` is a 1-D
float array, a dataset ``D`` is a 2-D array of equal-length series plus an
integer label vector.
"""

from repro.ts.concat import ConcatenatedSeries, concatenate_series
from repro.ts.distance import (
    distance_profile,
    euclidean_distance,
    pairwise_subsequence_distance,
    sliding_mean_std,
    squared_euclidean,
    subsequence_distance,
)
from repro.ts.dtw import dtw_distance, lb_keogh
from repro.ts.preprocessing import (
    linear_interpolate_resample,
    moving_average,
    znormalize,
)
from repro.ts.series import Dataset, validate_labels, validate_series, validate_series_matrix
from repro.ts.windows import num_windows, sliding_window_view, subsequences_of

__all__ = [
    "ConcatenatedSeries",
    "Dataset",
    "concatenate_series",
    "distance_profile",
    "dtw_distance",
    "euclidean_distance",
    "lb_keogh",
    "linear_interpolate_resample",
    "moving_average",
    "num_windows",
    "pairwise_subsequence_distance",
    "sliding_mean_std",
    "sliding_window_view",
    "squared_euclidean",
    "subsequence_distance",
    "subsequences_of",
    "validate_labels",
    "validate_series",
    "validate_series_matrix",
    "znormalize",
]
