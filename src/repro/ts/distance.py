"""Deprecated distance entry points (kept as shims over ``repro.kernels``).

Historically this module *was* the distance substrate: Euclidean
primitives, sliding profiles, and the paper's Def.-4 distance. That code
now lives in :mod:`repro.kernels` — a batched, caching engine shared by
every call path — and these wrappers only delegate, emitting a single
:class:`DeprecationWarning` per function per process on first use.

Migration map::

    sliding_dot_product(q, t)            -> repro.kernels.sliding_dot_product
    sliding_mean_std(t, w)               -> repro.kernels.sliding_mean_std
    distance_profile(q, t)               -> repro.kernels.distance_profile
    subsequence_distance(a, b)           -> repro.kernels.subsequence_distance
    squared_euclidean / euclidean_distance -> repro.kernels (same names)
    pairwise_subsequence_distance(qs, X) -> repro.kernels.batch_min_distance

The kernel-engine versions accept keyword-only options (``cache=`` for
cross-phase reuse) and have batched counterparts (``batch_mass``,
``batch_min_distance``) that replace per-query Python loops.

Imports here are deliberately lazy: ``repro.kernels.engine`` imports
``repro.ts.preprocessing``/``repro.ts.windows``, which initializes this
package, so a module-level import back into ``repro.kernels`` would be
circular.
"""

from __future__ import annotations

import numpy as np


def squared_euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Deprecated shim for :func:`repro.kernels.squared_euclidean`."""
    from repro import kernels

    kernels.warn_deprecated_once(
        "repro.ts.distance.squared_euclidean", "repro.kernels.squared_euclidean"
    )
    return kernels.squared_euclidean(a, b)


def euclidean_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Deprecated shim for :func:`repro.kernels.euclidean_distance`."""
    from repro import kernels

    kernels.warn_deprecated_once(
        "repro.ts.distance.euclidean_distance", "repro.kernels.euclidean_distance"
    )
    return kernels.euclidean_distance(a, b)


def sliding_dot_product(query: np.ndarray, series: np.ndarray) -> np.ndarray:
    """Deprecated shim for :func:`repro.kernels.sliding_dot_product`."""
    from repro import kernels

    kernels.warn_deprecated_once(
        "repro.ts.distance.sliding_dot_product",
        "repro.kernels.sliding_dot_product",
    )
    return kernels.sliding_dot_product(query, series)


def sliding_mean_std(series: np.ndarray, window: int) -> tuple[np.ndarray, np.ndarray]:
    """Deprecated shim for :func:`repro.kernels.sliding_mean_std`."""
    from repro import kernels

    kernels.warn_deprecated_once(
        "repro.ts.distance.sliding_mean_std", "repro.kernels.sliding_mean_std"
    )
    return kernels.sliding_mean_std(series, window)


def distance_profile(query: np.ndarray, series: np.ndarray) -> np.ndarray:
    """Deprecated shim for :func:`repro.kernels.distance_profile`."""
    from repro import kernels

    kernels.warn_deprecated_once(
        "repro.ts.distance.distance_profile", "repro.kernels.distance_profile"
    )
    return kernels.distance_profile(query, series)


def subsequence_distance(query: np.ndarray, series: np.ndarray) -> float:
    """Deprecated shim for :func:`repro.kernels.subsequence_distance`."""
    from repro import kernels

    kernels.warn_deprecated_once(
        "repro.ts.distance.subsequence_distance",
        "repro.kernels.subsequence_distance",
    )
    return kernels.subsequence_distance(query, series)


def pairwise_subsequence_distance(
    queries: list[np.ndarray] | np.ndarray, X: np.ndarray
) -> np.ndarray:
    """Deprecated shim for :func:`repro.kernels.batch_min_distance`.

    Returns the same ``(M, len(queries))`` Def.-4 distance matrix
    ``d[j, i] = dist(X[j], queries[i])``, now computed by the batched
    kernel instead of a per-query Python loop.
    """
    from repro import kernels

    kernels.warn_deprecated_once(
        "repro.ts.distance.pairwise_subsequence_distance",
        "repro.kernels.batch_min_distance",
    )
    return kernels.batch_min_distance(queries, X)
