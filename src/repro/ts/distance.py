"""Distance primitives: Euclidean, sliding distance profiles, Def.-4 distance.

The central quantity of the paper is Definition 4:

    dist(Tp, Tq) = min_j (1/|Tp|) * sum_l (tq_{j+l-1} - tp_l)^2

i.e. the *length-normalized squared* Euclidean distance of the shorter
series against its best-matching window in the longer one. Everything that
scores shapelets (utilities, shapelet transform, BASE) is built on this.

The sliding computation uses the FFT dot-product trick (the non-normalized
half of MASS): for a query q and series t,

    ||t_j - q||^2 = sum(t_j^2) - 2 * (t (x) q)_j + sum(q^2)

where ``(x)`` is sliding correlation, computed in O(N log N) via
:func:`scipy.signal.fftconvolve`.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import fftconvolve

from repro.exceptions import LengthError, ValidationError
from repro.ts.windows import num_windows

#: Below this many output windows the direct method beats the FFT.
_FFT_CUTOVER = 8


def squared_euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Plain squared Euclidean distance between two equal-length series."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValidationError(f"shape mismatch: {a.shape} vs {b.shape}")
    diff = a - b
    return float(np.dot(diff, diff))


def euclidean_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two equal-length series."""
    return float(np.sqrt(squared_euclidean(a, b)))


def sliding_dot_product(query: np.ndarray, series: np.ndarray) -> np.ndarray:
    """Dot products of ``query`` with every window of ``series``.

    Returns an array of length ``N - L + 1``. Uses FFT convolution for long
    inputs and a direct stride loop for tiny ones.
    """
    query = np.asarray(query, dtype=np.float64)
    series = np.asarray(series, dtype=np.float64)
    n_out = num_windows(series.size, query.size)
    if n_out <= _FFT_CUTOVER:
        windows = np.lib.stride_tricks.sliding_window_view(series, query.size)
        return windows @ query
    # Correlation == convolution with the reversed query.
    full = fftconvolve(series, query[::-1], mode="valid")
    return full[:n_out]


def sliding_mean_std(series: np.ndarray, window: int) -> tuple[np.ndarray, np.ndarray]:
    """Mean and std of every length-``window`` subsequence, via cumulative sums.

    Returns ``(means, stds)`` each of length ``N - L + 1``. Numerical noise
    can make the variance marginally negative for near-constant windows; it
    is clipped at zero.
    """
    arr = np.asarray(series, dtype=np.float64)
    n_out = num_windows(arr.size, window)
    csum = np.concatenate([[0.0], np.cumsum(arr)])
    csum2 = np.concatenate([[0.0], np.cumsum(arr * arr)])
    sums = csum[window:] - csum[:-window]
    sums2 = csum2[window:] - csum2[:-window]
    means = sums / window
    variances = np.maximum(sums2 / window - means * means, 0.0)
    stds = np.sqrt(variances)
    assert means.size == n_out
    return means, stds


def distance_profile(query: np.ndarray, series: np.ndarray) -> np.ndarray:
    """Squared Euclidean distance of ``query`` to every window of ``series``.

    Non-normalized (raw values, per Def. 4 of the paper, *before* the 1/L
    factor). Returns an array of length ``N - L + 1``; tiny negative values
    from FFT round-off are clipped at zero.
    """
    query = np.asarray(query, dtype=np.float64)
    series = np.asarray(series, dtype=np.float64)
    if query.ndim != 1 or series.ndim != 1:
        raise ValidationError("distance_profile expects 1-D arrays")
    dots = sliding_dot_product(query, series)
    window = query.size
    csum2 = np.concatenate([[0.0], np.cumsum(series * series)])
    window_sq = csum2[window:] - csum2[:-window]
    profile = window_sq - 2.0 * dots + float(np.dot(query, query))
    return np.maximum(profile, 0.0)


def subsequence_distance(query: np.ndarray, series: np.ndarray) -> float:
    """The paper's Definition 4 distance ``dist(Tp, Tq)``.

    Length-normalized squared Euclidean distance of the shorter input
    against its best-matching window in the longer one. The two arguments
    may be given in either order; the shorter one is always slid over the
    longer one (w.l.o.g. assumption in the paper).
    """
    a = np.asarray(query, dtype=np.float64)
    b = np.asarray(series, dtype=np.float64)
    if a.size > b.size:
        a, b = b, a
    if a.size == 0:
        raise LengthError("subsequence_distance requires non-empty inputs")
    profile = distance_profile(a, b)
    return float(profile.min() / a.size)


def pairwise_subsequence_distance(
    queries: list[np.ndarray] | np.ndarray, X: np.ndarray
) -> np.ndarray:
    """Def.-4 distances between every query and every series in ``X``.

    Parameters
    ----------
    queries:
        A sequence of 1-D arrays (possibly different lengths), e.g.
        shapelets.
    X:
        ``(M, N)`` series matrix.

    Returns
    -------
    ``(M, len(queries))`` matrix ``d[j, i] = dist(X[j], queries[i])``,
    matching the paper's shapelet-transform layout (Def. 7).
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValidationError("X must be a 2-D (M, N) matrix")
    out = np.empty((X.shape[0], len(queries)), dtype=np.float64)
    for i, q in enumerate(queries):
        q = np.asarray(q, dtype=np.float64)
        if q.size > X.shape[1]:
            raise LengthError(
                f"query {i} of length {q.size} exceeds series length {X.shape[1]}"
            )
        for j in range(X.shape[0]):
            profile = distance_profile(q, X[j])
            out[j, i] = profile.min() / q.size
    return out
