"""Preprocessing primitives: z-normalization, smoothing, resampling."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

#: Standard deviations below this are treated as zero (constant series).
FLAT_STD = 1e-12


def znormalize(series: np.ndarray, axis: int = -1) -> np.ndarray:
    """Z-normalize ``series`` along ``axis``: subtract mean, divide by std.

    Constant (zero-variance) slices are mapped to all-zeros instead of
    dividing by zero, matching the convention used throughout the matrix
    profile literature.
    """
    arr = np.asarray(series, dtype=np.float64)
    mean = arr.mean(axis=axis, keepdims=True)
    std = arr.std(axis=axis, keepdims=True)
    safe_std = np.where(std < FLAT_STD, 1.0, std)
    out = (arr - mean) / safe_std
    # Force exactly zero where the slice was constant.
    flat = np.broadcast_to(std < FLAT_STD, arr.shape)
    if np.any(flat):
        out = np.where(flat, 0.0, out)
    return out


def moving_average(series: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with edge shrinking.

    The output has the same length as the input; near the edges the window
    shrinks so no padding values are invented.
    """
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim != 1:
        raise ValidationError("moving_average expects a 1-D series")
    if window < 1:
        raise ValidationError(f"window must be >= 1, got {window}")
    if window == 1 or arr.size == 0:
        return arr.copy()
    # Cumulative-sum trick with half-window edge handling.
    half = window // 2
    padded = np.concatenate([np.zeros(1), np.cumsum(arr)])
    n = arr.size
    starts = np.clip(np.arange(n) - half, 0, n)
    ends = np.clip(np.arange(n) + (window - half), 0, n)
    sums = padded[ends] - padded[starts]
    counts = ends - starts
    return sums / counts


def linear_interpolate_resample(series: np.ndarray, new_length: int) -> np.ndarray:
    """Resample ``series`` to ``new_length`` points by linear interpolation.

    Used to bring variable-length shapelet candidates to a common dimension
    before LSH hashing (see DESIGN.md, "Per-length LSH" note: the library
    defaults to per-length tables, but resampling is available for the
    shared-table variant and for plotting).
    """
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValidationError("resample expects a non-empty 1-D series")
    if new_length < 1:
        raise ValidationError(f"new_length must be >= 1, got {new_length}")
    if new_length == arr.size:
        return arr.copy()
    if arr.size == 1:
        return np.full(new_length, arr[0])
    old_x = np.linspace(0.0, 1.0, arr.size)
    new_x = np.linspace(0.0, 1.0, new_length)
    return np.interp(new_x, old_x, arr)
