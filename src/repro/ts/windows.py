"""Sliding-window utilities shared by profiles, candidates, and baselines."""

from __future__ import annotations

import numpy as np

from repro.exceptions import LengthError


def num_windows(series_length: int, window: int) -> int:
    """Number of length-``window`` subsequences of a length-``series_length`` series.

    This is the paper's ``N - L + 1``. Raises :class:`LengthError` when the
    window does not fit.
    """
    if window < 1:
        raise LengthError(f"window must be >= 1, got {window}")
    if window > series_length:
        raise LengthError(
            f"window {window} longer than series of length {series_length}"
        )
    return series_length - window + 1


def sliding_window_view(series: np.ndarray, window: int) -> np.ndarray:
    """All length-``window`` subsequences of ``series`` as a read-only view.

    Returns an ``(N - L + 1, L)`` array sharing memory with the input; do
    not mutate it. Use :func:`subsequences_of` for an owning copy.
    """
    arr = np.ascontiguousarray(series, dtype=np.float64)
    if arr.ndim != 1:
        raise LengthError("sliding_window_view expects a 1-D series")
    num_windows(arr.size, window)  # validates
    view = np.lib.stride_tricks.sliding_window_view(arr, window)
    view.flags.writeable = False
    return view


def subsequences_of(series: np.ndarray, window: int, step: int = 1) -> np.ndarray:
    """Owning copy of the subsequences of ``series`` with the given stride."""
    if step < 1:
        raise LengthError(f"step must be >= 1, got {step}")
    view = sliding_window_view(series, window)
    return view[::step].copy()
