"""Deterministic fault injection for distributed candidate generation.

Real worker fleets crash, hang, and ship corrupt payloads; this module
wraps a worker function so those failure modes can be replayed *exactly*
in tests and benchmarks. Every fault decision is keyed by
``(plan.seed, unit.seed, attempt)``, so:

* the same plan against the same work units injects the same faults;
* a unit that crashes on attempt 0 draws fresh (still deterministic)
  fate on attempt 1, which is what lets retries recover it;
* different units fail independently, like real machines.

Injected failure modes (checked in this order, first hit wins):

``crash``
    The worker raises :class:`repro.exceptions.WorkerCrashError`.
``hang``
    The worker never returns. Simulated without burning wall-clock time
    by raising the :class:`repro.exceptions.UnitTimeoutError` sentinel —
    exactly what the retrying executor's deadline check would produce.
    With ``hang_seconds > 0`` the worker instead really sleeps that long
    before answering, to exercise the live ``unit_timeout`` path.
``nan``
    The unit computes normally but every candidate's values come back
    NaN-poisoned (a bit-flipped / overflowed payload).
``drop``
    The result is lost in transit: the worker returns a
    :class:`DroppedResult` marker instead of its candidates.
``duplicate``
    The payload is delivered twice (at-least-once delivery): the
    candidate list is returned with every element repeated.
``slow``
    The worker answers correctly but late: it sleeps a deterministic
    latency-jitter delay (``slow_seconds`` scaled by a draw keyed by the
    same ``(plan seed, unit seed, attempt)`` triple) before computing.
    Payloads are untouched — this fault exists to drive deadline and
    tail-latency handling in the distributed and serving chaos tests.

The wrapper (:class:`FaultInjector`) is picklable as long as the wrapped
worker is, so it runs unchanged under the process-pool executor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.exceptions import (
    UnitTimeoutError,
    ValidationError,
    WorkerCrashError,
)
from repro.types import Candidate


class DroppedResult:
    """Marker payload standing in for a result lost in transit.

    Instances compare equal by type (pickling across a process boundary
    creates a new object), so detect one with ``isinstance``.
    """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<result dropped in transit>"


#: Fault kinds in decision order (first triggered wins). ``slow`` is
#: last so adding it left every pre-existing campaign's decisions intact
#: (the extra uniform draw extends the vector without perturbing the
#: prefix).
FAULT_KINDS: tuple[str, ...] = (
    "crash", "hang", "nan", "drop", "duplicate", "slow",
)


@dataclass(frozen=True)
class FaultPlan:
    """Rates and seed of a deterministic fault-injection campaign.

    Attributes
    ----------
    crash_rate, hang_rate, nan_rate, drop_rate, duplicate_rate, slow_rate:
        Per-attempt probability of each failure mode, each in [0, 1].
    hang_seconds:
        When > 0, an injected hang really sleeps this long (then answers
        normally) instead of raising the timeout sentinel — pair it with
        ``FaultToleranceConfig.unit_timeout`` to drive the live deadline
        check.
    slow_seconds:
        Base latency of an injected ``slow`` fault; the actual delay is
        ``slow_seconds * (0.5 + u)`` with ``u`` a deterministic uniform
        draw keyed by ``(plan seed, unit seed, attempt)``, so the jitter
        replays exactly.
    seed:
        Campaign seed; combined with the unit seed and attempt index so
        the whole campaign is replayable.
    """

    crash_rate: float = 0.0
    hang_rate: float = 0.0
    nan_rate: float = 0.0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    slow_rate: float = 0.0
    hang_seconds: float = 0.0
    slow_seconds: float = 0.005
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("crash_rate", "hang_rate", "nan_rate", "drop_rate",
                     "duplicate_rate", "slow_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValidationError(f"{name} must be in [0, 1], got {rate}")
        if self.hang_seconds < 0:
            raise ValidationError("hang_seconds must be >= 0")
        if self.slow_seconds < 0:
            raise ValidationError("slow_seconds must be >= 0")

    @property
    def total_rate(self) -> float:
        """Upper bound on the per-attempt probability of any fault."""
        return min(
            1.0,
            self.crash_rate + self.hang_rate + self.nan_rate
            + self.drop_rate + self.duplicate_rate + self.slow_rate,
        )

    def decide(self, unit_seed: int, attempt: int) -> str | None:
        """Which fault (if any) hits this ``(unit, attempt)`` pair.

        One independent uniform draw per fault kind, in ``FAULT_KINDS``
        order, from an RNG keyed by ``(plan seed, unit seed, attempt)``.
        Deterministic: the same triple always yields the same answer.
        """
        rng = np.random.default_rng(
            [int(self.seed), int(unit_seed) & 0xFFFFFFFFFFFFFFFF, int(attempt)]
        )
        draws = rng.random(len(FAULT_KINDS))
        rates = (self.crash_rate, self.hang_rate, self.nan_rate,
                 self.drop_rate, self.duplicate_rate, self.slow_rate)
        for kind, draw, rate in zip(FAULT_KINDS, draws, rates):
            if draw < rate:
                return kind
        return None

    def slow_delay(self, unit_seed: int, attempt: int) -> float:
        """Seconds an injected ``slow`` fault delays this ``(unit, attempt)``.

        Deterministic latency jitter in
        ``[0.5 * slow_seconds, 1.5 * slow_seconds)``; the RNG key extends
        the :meth:`decide` key with a constant discriminator so the delay
        draw never aliases the fault-selection draws.
        """
        rng = np.random.default_rng(
            [int(self.seed), int(unit_seed) & 0xFFFFFFFFFFFFFFFF,
             int(attempt), 0x510]
        )
        return float(self.slow_seconds * (0.5 + rng.random()))


def _poison_candidates(result: object) -> object:
    """NaN-poison a worker payload (list of candidates) in a fresh copy."""
    if not isinstance(result, list):
        return result
    poisoned = []
    for item in result:
        if isinstance(item, Candidate):
            poisoned.append(
                Candidate(
                    values=np.full_like(item.values, np.nan),
                    label=item.label,
                    kind=item.kind,
                    source_instance=item.source_instance,
                    start=item.start,
                    sample_id=item.sample_id,
                )
            )
        else:  # pragma: no cover - non-candidate payloads pass through
            poisoned.append(item)
    return poisoned


def _duplicate_result(result: object) -> object:
    """Deliver a list payload twice (at-least-once delivery)."""
    if isinstance(result, list):
        return result + list(result)
    return result


class _BoundInjector:
    """The fault wrapper specialised to one attempt index (picklable)."""

    def __init__(self, fn, plan: FaultPlan, attempt: int) -> None:
        self._fn = fn
        self._plan = plan
        self._attempt = attempt

    def __call__(self, unit):
        plan = self._plan
        fault = plan.decide(unit.seed, self._attempt)
        if fault == "slow":
            time.sleep(plan.slow_delay(unit.seed, self._attempt))
        if fault == "crash":
            raise WorkerCrashError(
                f"injected crash (unit seed={unit.seed}, "
                f"attempt={self._attempt})"
            )
        if fault == "hang":
            if plan.hang_seconds > 0:
                time.sleep(plan.hang_seconds)
            else:
                raise UnitTimeoutError(
                    f"injected hang (unit seed={unit.seed}, "
                    f"attempt={self._attempt})"
                )
        result = self._fn(unit)
        if fault == "nan":
            return _poison_candidates(result)
        if fault == "drop":
            return DroppedResult()
        if fault == "duplicate":
            return _duplicate_result(result)
        return result


class FaultInjector:
    """Wrap a worker function with a deterministic fault campaign.

    Usable anywhere the bare worker is (including inside process pools).
    Called directly it behaves as attempt 0; the retrying executor asks
    for per-attempt variants via :meth:`for_attempt`, which is what makes
    injected faults transient and therefore recoverable.
    """

    def __init__(self, fn, plan: FaultPlan) -> None:
        self.fn = fn
        self.plan = plan

    def for_attempt(self, attempt: int) -> _BoundInjector:
        """The worker as seen on retry round ``attempt`` (0-based)."""
        return _BoundInjector(self.fn, self.plan, attempt)

    def __call__(self, unit):
        return self.for_attempt(0)(unit)
