"""Executors for distributed candidate generation.

A :class:`WorkUnit` is a self-contained, picklable description of one
(class, sample) candidate-generation task. Executors map a worker function
over the units; all implementations preserve unit order, so the merged
pool is deterministic.

:class:`RetryingExecutor` wraps any of the base executors with the
fault-tolerance policy of ``docs/robustness.md``: per-unit exception
capture, bounded retries with seeded exponential backoff, per-unit
wall-clock budgets, result validation, and graceful degradation to serial
execution when the underlying pool itself breaks.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Protocol, Sequence, TypeVar

import numpy as np

from repro.exceptions import PartialResultError, ValidationError

T = TypeVar("T")


@dataclass(frozen=True)
class WorkUnit:
    """One candidate-generation task: a sample of one class.

    Attributes
    ----------
    label:
        Class label the unit belongs to.
    sample_id:
        Index of the bagging sample within the class (0..Q_N-1).
    rows:
        Dataset row indices of the instances in the sample.
    X_rows:
        The instance values themselves (so workers need no shared state).
    lengths:
        Candidate lengths to profile.
    seed:
        Unit-specific seed (derived from the master seed).
    normalized:
        Distance flavour for the profile computation.
    motifs_per_profile, discords_per_profile:
        Harvest widths (Algorithm 1).
    """

    label: int
    sample_id: int
    rows: tuple[int, ...]
    X_rows: np.ndarray
    lengths: tuple[int, ...]
    seed: int
    normalized: bool = True
    motifs_per_profile: int = 1
    discords_per_profile: int = 1


class Executor(Protocol):
    """Maps a function over work units, preserving order."""

    def map(self, fn: Callable[[WorkUnit], T], units: Sequence[WorkUnit]) -> list[T]:
        """Apply ``fn`` to every unit and return results in unit order."""
        ...


class SerialExecutor:
    """Reference executor: plain in-process loop."""

    def map(self, fn: Callable[[WorkUnit], T], units: Sequence[WorkUnit]) -> list[T]:
        """Apply ``fn`` sequentially."""
        return [fn(unit) for unit in units]


class ThreadExecutor:
    """Thread-pool executor (useful when numpy releases the GIL in FFTs)."""

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ValidationError("max_workers must be >= 1")
        self.max_workers = max_workers

    def map(self, fn: Callable[[WorkUnit], T], units: Sequence[WorkUnit]) -> list[T]:
        """Apply ``fn`` across a thread pool, preserving order."""
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(fn, units))


class ProcessExecutor:
    """Process-pool executor: true multi-core candidate generation.

    The worker function and units must be picklable (they are: units carry
    plain arrays, and the worker is a module-level function).
    """

    def __init__(self, max_workers: int = 2) -> None:
        if max_workers < 1:
            raise ValidationError("max_workers must be >= 1")
        self.max_workers = max_workers

    def map(self, fn: Callable[[WorkUnit], T], units: Sequence[WorkUnit]) -> list[T]:
        """Apply ``fn`` across a process pool, preserving order."""
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(fn, units))


@dataclass
class UnitOutcome:
    """Final fate of one work unit after all retry rounds.

    Attributes
    ----------
    index:
        Position of the unit in the submitted sequence.
    value:
        The worker's payload when the unit succeeded, else ``None``.
    error:
        Human-readable description of the last failure, ``None`` on
        success.
    attempts:
        Total attempts consumed (1 = succeeded first try).
    elapsed:
        Wall-clock seconds of the successful attempt (0.0 on permanent
        failure or checkpoint hits).
    from_checkpoint:
        True when the value was restored from a checkpoint store rather
        than computed this run.
    """

    index: int
    value: Any = None
    error: str | None = None
    attempts: int = 1
    elapsed: float = 0.0
    from_checkpoint: bool = False

    @property
    def ok(self) -> bool:
        """Whether the unit ultimately produced a usable result."""
        return self.error is None


class _CatchingWorker:
    """Worker shim: never raises, returns ``(value, error, elapsed)``.

    Exceptions raised by the wrapped function are captured *inside* the
    worker so a pool ``map`` cannot be aborted by one bad unit; the
    coordinator decides what to retry. Picklable whenever ``fn`` is.
    """

    def __init__(self, fn: Callable[[WorkUnit], T], timeout: float | None) -> None:
        self._fn = fn
        self._timeout = timeout

    def __call__(self, unit: WorkUnit) -> tuple[Any, str | None, float]:
        start = time.perf_counter()
        try:
            value = self._fn(unit)
        except Exception as exc:  # noqa: BLE001 - unit failures are data here
            return None, f"{type(exc).__name__}: {exc}", time.perf_counter() - start
        elapsed = time.perf_counter() - start
        if self._timeout is not None and elapsed > self._timeout:
            return (
                None,
                f"UnitTimeoutError: unit exceeded its {self._timeout:g}s "
                f"budget (took {elapsed:.3f}s)",
                elapsed,
            )
        return value, None, elapsed


class RetryingExecutor:
    """Retry/backoff/timeout wrapper around any base executor.

    Parameters
    ----------
    inner:
        The executor doing the actual fan-out (default: serial).
    max_retries:
        Extra rounds after the first attempt; a unit failing every round
        is reported as a permanent failure, not raised.
    base_delay, max_delay, jitter, seed:
        Exponential backoff between rounds: round ``r`` (1-based) sleeps
        ``min(max_delay, base_delay * 2**(r-1)) * (1 + jitter * u)`` with
        ``u`` drawn from a generator seeded by ``seed`` — reproducible
        schedules, and no sleep at all when ``base_delay`` is 0.
    unit_timeout:
        Per-unit wall-clock budget in seconds; exceeding it marks the
        attempt as a retryable timeout failure.
    validate:
        Optional payload check ``value -> error message | None`` applied
        to successful attempts; a message marks the attempt failed (used
        to catch NaN-poisoned or dropped results).

    If the *pool itself* breaks mid-round (e.g. ``BrokenProcessPool``),
    the executor degrades to in-process serial execution for the rest of
    the run — a warning is emitted and ``degraded_`` is set, but the run
    survives. Workers that raise per-unit never trigger degradation.
    """

    def __init__(
        self,
        inner: Executor | None = None,
        max_retries: int = 3,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        jitter: float = 0.1,
        unit_timeout: float | None = None,
        validate: Callable[[Any], str | None] | None = None,
        seed: int | None = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_retries < 0:
            raise ValidationError("max_retries must be >= 0")
        if base_delay < 0 or max_delay < base_delay:
            raise ValidationError("need 0 <= base_delay <= max_delay")
        if jitter < 0:
            raise ValidationError("jitter must be >= 0")
        if unit_timeout is not None and unit_timeout <= 0:
            raise ValidationError("unit_timeout must be > 0 when set")
        self.inner: Executor = inner if inner is not None else SerialExecutor()
        self.max_retries = max_retries
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.jitter = jitter
        self.unit_timeout = unit_timeout
        self.validate = validate
        self._rng = np.random.default_rng(seed if seed is not None else 0)
        self._sleep = sleep
        self.degraded_ = False

    def _backoff(self, round_index: int) -> float:
        """Seconds to sleep before retry round ``round_index`` (1-based)."""
        delay = min(self.max_delay, self.base_delay * 2.0 ** (round_index - 1))
        return delay * (1.0 + self.jitter * float(self._rng.random()))

    def _run_round(
        self, worker: _CatchingWorker, batch: list[WorkUnit]
    ) -> list[tuple[Any, str | None, float]]:
        """One pool round; degrade to serial if the pool itself fails."""
        try:
            return self.inner.map(worker, batch)
        except Exception as exc:  # pool-level failure, not a unit failure
            if self.degraded_:
                raise
            warnings.warn(
                f"executor pool failed ({type(exc).__name__}: {exc}); "
                "degrading to serial execution for the remaining units",
                RuntimeWarning,
                stacklevel=3,
            )
            self.degraded_ = True
            self.inner = SerialExecutor()
            return self.inner.map(worker, batch)

    def map_with_outcomes(
        self, fn: Callable[[WorkUnit], T], units: Sequence[WorkUnit]
    ) -> list[UnitOutcome]:
        """Run every unit to success or retry exhaustion; never raises
        for per-unit failures.

        If ``fn`` exposes ``for_attempt(attempt)`` (the fault-injection
        wrapper does), each round calls the variant bound to that attempt
        index, which is what makes injected faults transient.
        """
        outcomes: list[UnitOutcome | None] = [None] * len(units)
        pending = list(range(len(units)))
        last_error: dict[int, str] = {}
        for attempt in range(self.max_retries + 1):
            if not pending:
                break
            if attempt > 0:
                delay = self._backoff(attempt)
                if delay > 0:
                    self._sleep(delay)
            round_fn = (
                fn.for_attempt(attempt)
                if hasattr(fn, "for_attempt")
                else fn
            )
            worker = _CatchingWorker(round_fn, self.unit_timeout)
            results = self._run_round(worker, [units[i] for i in pending])
            still_pending: list[int] = []
            for index, (value, error, elapsed) in zip(pending, results):
                if error is None and self.validate is not None:
                    error = self.validate(value)
                if error is None:
                    outcomes[index] = UnitOutcome(
                        index=index,
                        value=value,
                        attempts=attempt + 1,
                        elapsed=elapsed,
                    )
                else:
                    last_error[index] = error
                    still_pending.append(index)
            pending = still_pending
        for index in pending:
            outcomes[index] = UnitOutcome(
                index=index,
                error=last_error.get(index, "unknown failure"),
                attempts=self.max_retries + 1,
            )
        return [outcome for outcome in outcomes if outcome is not None]

    def map(self, fn: Callable[[WorkUnit], T], units: Sequence[WorkUnit]) -> list[T]:
        """Executor-protocol ``map``: all units must ultimately succeed.

        Raises :class:`repro.exceptions.PartialResultError` if any unit
        fails permanently; use :meth:`map_with_outcomes` for quorum-style
        partial-result handling.
        """
        outcomes = self.map_with_outcomes(fn, units)
        failed = [outcome for outcome in outcomes if not outcome.ok]
        if failed:
            raise PartialResultError(
                f"{len(failed)}/{len(units)} work units failed after "
                f"{self.max_retries + 1} attempts; first failure: "
                f"unit {failed[0].index}: {failed[0].error}"
            )
        return [outcome.value for outcome in outcomes]
