"""Executors for distributed candidate generation.

A :class:`WorkUnit` is a self-contained, picklable description of one
(class, sample) candidate-generation task. Executors map a worker function
over the units; all three implementations preserve unit order, so the
merged pool is deterministic.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence, TypeVar

import numpy as np

from repro.exceptions import ValidationError

T = TypeVar("T")


@dataclass(frozen=True)
class WorkUnit:
    """One candidate-generation task: a sample of one class.

    Attributes
    ----------
    label:
        Class label the unit belongs to.
    sample_id:
        Index of the bagging sample within the class (0..Q_N-1).
    rows:
        Dataset row indices of the instances in the sample.
    X_rows:
        The instance values themselves (so workers need no shared state).
    lengths:
        Candidate lengths to profile.
    seed:
        Unit-specific seed (derived from the master seed).
    normalized:
        Distance flavour for the profile computation.
    motifs_per_profile, discords_per_profile:
        Harvest widths (Algorithm 1).
    """

    label: int
    sample_id: int
    rows: tuple[int, ...]
    X_rows: np.ndarray
    lengths: tuple[int, ...]
    seed: int
    normalized: bool = True
    motifs_per_profile: int = 1
    discords_per_profile: int = 1


class Executor(Protocol):
    """Maps a function over work units, preserving order."""

    def map(self, fn: Callable[[WorkUnit], T], units: Sequence[WorkUnit]) -> list[T]:
        """Apply ``fn`` to every unit and return results in unit order."""
        ...


class SerialExecutor:
    """Reference executor: plain in-process loop."""

    def map(self, fn: Callable[[WorkUnit], T], units: Sequence[WorkUnit]) -> list[T]:
        """Apply ``fn`` sequentially."""
        return [fn(unit) for unit in units]


class ThreadExecutor:
    """Thread-pool executor (useful when numpy releases the GIL in FFTs)."""

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ValidationError("max_workers must be >= 1")
        self.max_workers = max_workers

    def map(self, fn: Callable[[WorkUnit], T], units: Sequence[WorkUnit]) -> list[T]:
        """Apply ``fn`` across a thread pool, preserving order."""
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(fn, units))


class ProcessExecutor:
    """Process-pool executor: true multi-core candidate generation.

    The worker function and units must be picklable (they are: units carry
    plain arrays, and the worker is a module-level function).
    """

    def __init__(self, max_workers: int = 2) -> None:
        if max_workers < 1:
            raise ValidationError("max_workers must be >= 1")
        self.max_workers = max_workers

    def map(self, fn: Callable[[WorkUnit], T], units: Sequence[WorkUnit]) -> list[T]:
        """Apply ``fn`` across a process pool, preserving order."""
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(fn, units))
