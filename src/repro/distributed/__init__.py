"""Distributed shapelet discovery (the paper's stated future work).

The conclusion names "a distributed shapelet discovery version of IPS" as
future work. Candidate generation dominates discovery cost (it runs the
O(N^2) instance-profile computation Q_N times per class) and is
embarrassingly parallel across (class, sample) units, so this subpackage
distributes exactly that stage:

* work is partitioned into one unit per (class, bagging sample);
* every unit carries its own seed derived from the master seed via
  ``numpy.random.SeedSequence.spawn``, so results are bit-identical
  regardless of executor choice or worker count;
* executors: in-process serial (reference), thread pool, and process pool
  (true multi-core, units are picklable).

Pruning and top-k selection still run on the coordinator — they are cheap
after DABF (Table V).
"""

from repro.distributed.discovery import DistributedIPS
from repro.distributed.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    WorkUnit,
)

__all__ = [
    "DistributedIPS",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "WorkUnit",
]
