"""Distributed shapelet discovery (the paper's stated future work).

The conclusion names "a distributed shapelet discovery version of IPS" as
future work. Candidate generation dominates discovery cost (it runs the
O(N^2) instance-profile computation Q_N times per class) and is
embarrassingly parallel across (class, sample) units, so this subpackage
distributes exactly that stage:

* work is partitioned into one unit per (class, bagging sample);
* every unit carries its own seed derived from the master seed via
  ``numpy.random.SeedSequence.spawn``, so results are bit-identical
  regardless of executor choice or worker count;
* executors: in-process serial (reference), thread pool, and process pool
  (true multi-core, units are picklable).

Pruning and top-k selection still run on the coordinator — they are cheap
after DABF (Table V).

Fault tolerance (see ``docs/robustness.md``): wrap any executor in
:class:`RetryingExecutor` for retries/backoff/timeouts, attach a
``FaultToleranceConfig`` to the pipeline config for quorum merging and
checkpoint/resume, and use :class:`FaultPlan`/:class:`FaultInjector`
to deterministically replay worker crashes, hangs, NaN-poisoned payloads,
and dropped/duplicated deliveries.
"""

from repro.distributed.checkpoint import CheckpointStore, unit_key
from repro.distributed.discovery import DistributedIPS, validate_unit_result
from repro.distributed.executor import (
    ProcessExecutor,
    RetryingExecutor,
    SerialExecutor,
    ThreadExecutor,
    UnitOutcome,
    WorkUnit,
)
from repro.distributed.faults import DroppedResult, FaultInjector, FaultPlan
from repro.distributed.interrupt import GracefulInterrupt

__all__ = [
    "CheckpointStore",
    "DistributedIPS",
    "DroppedResult",
    "FaultInjector",
    "FaultPlan",
    "GracefulInterrupt",
    "ProcessExecutor",
    "RetryingExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "UnitOutcome",
    "WorkUnit",
    "unit_key",
    "validate_unit_result",
]
