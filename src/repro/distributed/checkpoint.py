"""Checkpoint store for distributed candidate generation.

Candidate generation dominates discovery cost, so losing a long run to a
late failure is expensive. The store persists each completed work unit's
candidates under a run directory (one ``.npz`` per unit plus a
``manifest.json``); a re-run against the same dataset/config resumes from
the completed units and recomputes only what is missing.

Layout::

    <run_dir>/
        manifest.json          # run fingerprint (seed, q_n, dataset shape)
        unit_<key>.npz         # candidate values + JSON metadata per unit

Unit keys embed the unit's derived seed, so any change to the master seed
or sampling parameters changes every key and stale entries are simply
never matched. The manifest is a second guard: resuming into a directory
whose fingerprint differs raises :class:`repro.exceptions.CheckpointError`
instead of silently merging incompatible pools. Writes are atomic
(temp file + ``os.replace``), and unreadable entries are treated as
missing rather than fatal — a half-written file from a killed run just
gets recomputed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.distributed.executor import WorkUnit
from repro.exceptions import CheckpointError
from repro.types import Candidate, CandidateKind

_MANIFEST = "manifest.json"


def unit_key(unit: WorkUnit) -> str:
    """Stable identifier of a work unit within a run."""
    return f"{unit.label:03d}-{unit.sample_id:04d}-{int(unit.seed) & 0xFFFFFFFFFFFFFFFF:016x}"


class CheckpointStore:
    """Persist and restore per-unit candidate lists under a run dir."""

    def __init__(self, run_dir: str | Path) -> None:
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)

    def _unit_path(self, key: str) -> Path:
        return self.run_dir / f"unit_{key}.npz"

    # -- manifest ---------------------------------------------------------

    def check_manifest(self, fingerprint: dict) -> None:
        """Write the run fingerprint, or verify it matches an existing one.

        Raises :class:`CheckpointError` when the directory already holds a
        manifest for a different run (different seed/config/dataset).
        """
        path = self.run_dir / _MANIFEST
        if path.exists():
            try:
                existing = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise CheckpointError(
                    f"unreadable checkpoint manifest at {path}: {exc}"
                ) from exc
            if existing != fingerprint:
                raise CheckpointError(
                    f"checkpoint dir {self.run_dir} belongs to a different "
                    f"run (manifest {existing!r} != expected {fingerprint!r}); "
                    "use a fresh directory or delete the stale one"
                )
            return
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(fingerprint, sort_keys=True))
        os.replace(tmp, path)

    # -- unit results -----------------------------------------------------

    def has(self, key: str) -> bool:
        """Whether a completed result is stored for ``key``."""
        return self._unit_path(key).exists()

    def completed_keys(self) -> set[str]:
        """Keys of every unit result present in the store."""
        return {
            path.stem[len("unit_"):]
            for path in self.run_dir.glob("unit_*.npz")
        }

    def save(self, key: str, candidates: list[Candidate]) -> None:
        """Atomically persist one unit's candidate list."""
        meta = [
            {
                "label": candidate.label,
                "kind": candidate.kind.value,
                "source_instance": candidate.source_instance,
                "start": candidate.start,
                "sample_id": candidate.sample_id,
            }
            for candidate in candidates
        ]
        arrays = {
            f"values_{i}": candidate.values
            for i, candidate in enumerate(candidates)
        }
        arrays["meta"] = np.array(json.dumps(meta))
        path = self._unit_path(key)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as fh:
            np.savez(fh, **arrays)
        os.replace(tmp, path)

    def load(self, key: str) -> list[Candidate] | None:
        """Restore one unit's candidates, or ``None`` if absent/corrupt.

        A corrupt entry (killed mid-write before the atomic rename ever
        happened, disk trouble, ...) is deleted and reported as missing so
        the unit is simply recomputed.
        """
        path = self._unit_path(key)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                meta = json.loads(str(data["meta"]))
                return [
                    Candidate(
                        values=data[f"values_{i}"],
                        label=int(entry["label"]),
                        kind=CandidateKind(entry["kind"]),
                        source_instance=int(entry["source_instance"]),
                        start=int(entry["start"]),
                        sample_id=int(entry["sample_id"]),
                    )
                    for i, entry in enumerate(meta)
                ]
        except Exception:  # noqa: BLE001 - any unreadable entry => recompute
            try:
                path.unlink()
            except OSError:
                pass
            return None
