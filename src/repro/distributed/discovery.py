"""Coordinator for distributed IPS candidate generation.

``DistributedIPS.discover`` produces the same :class:`DiscoveryResult` as
the serial pipeline, but fans the (class, sample) candidate-generation
units out to an executor. Determinism: unit seeds come from
``SeedSequence(master).spawn``, indexed by unit order, so the serial,
thread, and process executors return identical candidate pools.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import IPSConfig
from repro.core.pipeline import restore_emptied_classes
from repro.core.selection import select_top_k_per_class
from repro.core.utility import UtilityScores, score_candidates_dt
from repro.distributed.executor import Executor, SerialExecutor, WorkUnit
from repro.exceptions import EmptyPoolError, ValidationError
from repro.filters.dabf import DABF, PruneReport
from repro.instanceprofile.candidates import CandidatePool
from repro.instanceprofile.profile import instance_profile
from repro.instanceprofile.sampling import resolve_lengths
from repro.matrixprofile.discovery import top_k_discords, top_k_motifs
from repro.ts.concat import concatenate_series
from repro.ts.series import Dataset
from repro.types import Candidate, CandidateKind, DiscoveryResult


def generate_unit_candidates(unit: WorkUnit) -> list[Candidate]:
    """Worker function: Algorithm-1 inner loop for one (class, sample) unit.

    Module-level (picklable) so it can run in a process pool. Returns the
    motif and discord candidates of the unit's concatenated sample at
    every requested length.
    """
    sample = concatenate_series(unit.X_rows, instance_ids=np.asarray(unit.rows))
    candidates: list[Candidate] = []
    min_instance = int(np.diff(sample.boundaries).min())
    for length in unit.lengths:
        if length > min_instance:
            continue
        ip = instance_profile(sample, length, normalized=unit.normalized)
        if not np.any(np.isfinite(ip.values)):
            continue
        for kind, picker, per in (
            (CandidateKind.MOTIF, top_k_motifs, unit.motifs_per_profile),
            (CandidateKind.DISCORD, top_k_discords, unit.discords_per_profile),
        ):
            for position, _value in picker(ip.profile, per):
                instance_id, offset = ip.locate(position)
                candidates.append(
                    Candidate(
                        values=ip.subsequence(position),
                        label=unit.label,
                        kind=kind,
                        source_instance=instance_id,
                        start=offset,
                        sample_id=unit.sample_id,
                    )
                )
    return candidates


class DistributedIPS:
    """IPS with distributed candidate generation.

    Parameters
    ----------
    config:
        The usual pipeline configuration (``use_dt_cr`` is always on here;
        the distributed variant targets throughput).
    executor:
        Any :class:`repro.distributed.executor.Executor`; defaults to the
        in-process serial executor.
    """

    def __init__(
        self, config: IPSConfig | None = None, executor: Executor | None = None
    ) -> None:
        self.config = config or IPSConfig()
        self.executor = executor if executor is not None else SerialExecutor()

    def build_work_units(self, dataset: Dataset) -> list[WorkUnit]:
        """Partition Algorithm 1 into per-(class, sample) units."""
        config = self.config
        lengths = tuple(resolve_lengths(dataset.series_length, config.length_ratios))
        master = np.random.SeedSequence(
            config.seed if config.seed is not None else 0
        )
        n_units = dataset.n_classes * config.q_n
        child_seeds = master.spawn(n_units)
        units: list[WorkUnit] = []
        unit_index = 0
        for label in range(dataset.n_classes):
            class_rows = dataset.class_indices(label)
            for sample_id in range(config.q_n):
                rng = np.random.default_rng(child_seeds[unit_index])
                size = min(config.q_s, class_rows.size)
                if class_rows.size >= 2:
                    size = max(size, 2)
                rows = rng.choice(class_rows, size=size, replace=False)
                units.append(
                    WorkUnit(
                        label=label,
                        sample_id=sample_id,
                        rows=tuple(int(r) for r in rows),
                        X_rows=dataset.X[rows].copy(),
                        lengths=lengths,
                        seed=int(child_seeds[unit_index].generate_state(1)[0]),
                        normalized=config.normalized_profiles,
                        motifs_per_profile=config.motifs_per_profile,
                        discords_per_profile=config.discords_per_profile,
                    )
                )
                unit_index += 1
        return units

    def discover(self, dataset: Dataset) -> DiscoveryResult:
        """Distributed Algorithm 1, then the usual Algorithms 2-4."""
        if dataset.n_series < 1:
            raise ValidationError("empty dataset")
        config = self.config

        start = time.perf_counter()
        units = self.build_work_units(dataset)
        per_unit = self.executor.map(generate_unit_candidates, units)
        pool = CandidatePool()
        for unit_candidates in per_unit:
            for candidate in unit_candidates:
                pool.add(candidate)
        if len(pool) == 0:
            raise EmptyPoolError("distributed generation produced no candidates")
        time_generation = time.perf_counter() - start

        start = time.perf_counter()
        if dataset.n_classes > 1:
            dabf = DABF.build(
                pool,
                scheme=config.lsh_scheme,
                n_projections=config.n_projections,
                bins=config.bins,
                seed=config.seed,
            )
            pruned, report = dabf.prune(pool, theta=config.theta)
            pruned = restore_emptied_classes(pool, pruned)
        else:
            dabf = DABF.build(pool, seed=config.seed)
            pruned, report = pool.copy(), PruneReport()
        time_pruning = time.perf_counter() - start

        start = time.perf_counter()
        scores_by_class: dict[int, UtilityScores] = {}
        for label in range(dataset.n_classes):
            scores_by_class[label] = score_candidates_dt(
                dataset,
                pruned,
                label,
                dabf,
                normalize=config.normalize_utility_sums,
            )
        shapelets = select_top_k_per_class(scores_by_class, config.k)
        time_selection = time.perf_counter() - start

        return DiscoveryResult(
            shapelets=shapelets,
            n_candidates_generated=len(pool),
            n_candidates_after_pruning=len(pruned),
            time_candidate_generation=time_generation,
            time_pruning=time_pruning,
            time_selection=time_selection,
            extra={"n_work_units": len(units), "prune_report": report},
        )
