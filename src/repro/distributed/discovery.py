"""Coordinator for distributed IPS candidate generation.

``DistributedIPS.discover`` produces the same :class:`DiscoveryResult` as
the serial pipeline, but fans the (class, sample) candidate-generation
units out to an executor. Determinism: unit seeds come from
``SeedSequence(master).spawn``, indexed by unit order, so the serial,
thread, and process executors return identical candidate pools.

With ``IPSConfig.fault_tolerance`` set, discovery survives worker
failure: units are retried with backoff through
:class:`repro.distributed.executor.RetryingExecutor`, payloads are
validated (NaN-poisoned or dropped results count as failures), completed
units are checkpointed for resume, and the merge proceeds under a
per-class success quorum — recording exactly which units were lost —
or raises :class:`repro.exceptions.QuorumError` when too few survive.
Because every unit's output depends only on its own seed, a run that
recovers all units (by retry or from a checkpoint) yields a candidate
pool bit-identical to the zero-fault run.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import FaultToleranceConfig, IPSConfig
from repro.core.pipeline import restore_emptied_classes, score_with_class_fallback
from repro.core.selection import select_top_k_per_class
from repro.core.utility import (
    UtilityScores,
    score_candidates_brute,
    score_candidates_dt,
)
from repro.distributed.checkpoint import CheckpointStore, unit_key
from repro.distributed.executor import (
    Executor,
    RetryingExecutor,
    SerialExecutor,
    UnitOutcome,
    WorkUnit,
)
from repro.distributed.faults import DroppedResult, FaultInjector, FaultPlan
from repro.distributed.interrupt import GracefulInterrupt
from repro.exceptions import EmptyPoolError, QuorumError, ValidationError
from repro.filters.dabf import DABF, PruneReport
from repro.instanceprofile.candidates import CandidatePool
from repro.instanceprofile.profile import instance_profile
from repro.instanceprofile.sampling import resolve_lengths
from repro.matrixprofile.discovery import top_k_discords, top_k_motifs
from repro.obs import DEFAULT_JSONL_PATH, make_tracer, run_manifest
from repro.ts.concat import concatenate_series
from repro.ts.series import Dataset
from repro.types import Candidate, CandidateKind, DiscoveryResult


def validate_unit_result(value: object) -> str | None:
    """Payload check used by the fault-tolerant path.

    Returns a failure description (making the attempt retryable) for
    dropped results, wrong payload types, and non-finite candidate values;
    ``None`` for a healthy payload.
    """
    if isinstance(value, DroppedResult):
        return "result dropped in transit"
    if not isinstance(value, list):
        return (
            f"worker returned {type(value).__name__}, "
            "expected a list of candidates"
        )
    for candidate in value:
        if not isinstance(candidate, Candidate):
            return "worker returned a non-candidate payload"
        if not np.all(np.isfinite(candidate.values)):
            return "worker returned non-finite candidate values"
    return None


def generate_unit_candidates(unit: WorkUnit) -> list[Candidate]:
    """Worker function: Algorithm-1 inner loop for one (class, sample) unit.

    Module-level (picklable) so it can run in a process pool. Returns the
    motif and discord candidates of the unit's concatenated sample at
    every requested length.
    """
    sample = concatenate_series(unit.X_rows, instance_ids=np.asarray(unit.rows))
    candidates: list[Candidate] = []
    min_instance = int(np.diff(sample.boundaries).min())
    for length in unit.lengths:
        if length > min_instance:
            continue
        ip = instance_profile(sample, length, normalized=unit.normalized)
        if not np.any(np.isfinite(ip.values)):
            continue
        for kind, picker, per in (
            (CandidateKind.MOTIF, top_k_motifs, unit.motifs_per_profile),
            (CandidateKind.DISCORD, top_k_discords, unit.discords_per_profile),
        ):
            for position, _value in picker(ip.profile, per):
                instance_id, offset = ip.locate(position)
                candidates.append(
                    Candidate(
                        values=ip.subsequence(position),
                        label=unit.label,
                        kind=kind,
                        source_instance=instance_id,
                        start=offset,
                        sample_id=unit.sample_id,
                    )
                )
    return candidates


class DistributedIPS:
    """IPS with distributed candidate generation.

    Parameters
    ----------
    config:
        The usual pipeline configuration (``use_dt_cr`` is always on here;
        the distributed variant targets throughput). Set
        ``config.fault_tolerance`` to enable the resilient path.
    executor:
        Any :class:`repro.distributed.executor.Executor`; defaults to the
        in-process serial executor.
    fault_plan:
        Optional :class:`repro.distributed.faults.FaultPlan` wrapping the
        worker with deterministic fault injection — the test/benchmark
        substrate for the fault-tolerance layer. Injecting faults forces
        the fault-tolerant path even when ``config.fault_tolerance`` is
        unset (a default policy is used).
    """

    def __init__(
        self,
        config: IPSConfig | None = None,
        executor: Executor | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.config = config or IPSConfig()
        self.executor = executor if executor is not None else SerialExecutor()
        self.fault_plan = fault_plan
        #: The trace of the last ``discover`` call in a trace mode.
        self.trace_ = None
        #: Tracer handed over by ``IPSClassifier`` (see ``_begin_trace``).
        self._pending_tracer = None

    def build_work_units(self, dataset: Dataset) -> list[WorkUnit]:
        """Partition Algorithm 1 into per-(class, sample) units."""
        config = self.config
        lengths = tuple(resolve_lengths(dataset.series_length, config.length_ratios))
        master = np.random.SeedSequence(
            config.seed if config.seed is not None else 0
        )
        n_units = dataset.n_classes * config.q_n
        child_seeds = master.spawn(n_units)
        units: list[WorkUnit] = []
        unit_index = 0
        for label in range(dataset.n_classes):
            class_rows = dataset.class_indices(label)
            for sample_id in range(config.q_n):
                rng = np.random.default_rng(child_seeds[unit_index])
                size = min(config.q_s, class_rows.size)
                if class_rows.size >= 2:
                    size = max(size, 2)
                rows = rng.choice(class_rows, size=size, replace=False)
                units.append(
                    WorkUnit(
                        label=label,
                        sample_id=sample_id,
                        rows=tuple(int(r) for r in rows),
                        X_rows=dataset.X[rows].copy(),
                        lengths=lengths,
                        seed=int(child_seeds[unit_index].generate_state(1)[0]),
                        normalized=config.normalized_profiles,
                        motifs_per_profile=config.motifs_per_profile,
                        discords_per_profile=config.discords_per_profile,
                    )
                )
                unit_index += 1
        return units

    def _fingerprint(self, dataset: Dataset) -> dict:
        """JSON-serializable identity of a run, guarding checkpoint reuse."""
        config = self.config
        return {
            "seed": config.seed,
            "q_n": config.q_n,
            "q_s": config.q_s,
            "length_ratios": list(config.length_ratios),
            "normalized_profiles": config.normalized_profiles,
            "motifs_per_profile": config.motifs_per_profile,
            "discords_per_profile": config.discords_per_profile,
            "n_series": dataset.n_series,
            "n_classes": dataset.n_classes,
            "series_length": dataset.series_length,
        }

    def _run_fault_tolerant(
        self,
        dataset: Dataset,
        units: list[WorkUnit],
        worker,
        fault_tolerance: FaultToleranceConfig,
        tracker=None,
    ) -> tuple[list[WorkUnit], list[UnitOutcome], dict]:
        """Execute units under retries + optional checkpoint resume.

        With a budget ``tracker``, fresh units are executed one
        *round* (same ``sample_id`` across classes) at a time and the
        budget is checked between rounds; units beyond the truncation
        round are never attempted (and are excluded from the quorum
        denominator). The first round always runs. Returns the attempted
        units, their outcomes (aligned), and run statistics.
        """
        config = self.config
        outcomes: list[UnitOutcome | None] = [None] * len(units)
        remaining = list(range(len(units)))
        store: CheckpointStore | None = None
        checkpoint_hits = 0
        if fault_tolerance.checkpoint_dir is not None:
            store = CheckpointStore(fault_tolerance.checkpoint_dir)
            store.check_manifest(self._fingerprint(dataset))
            fresh: list[int] = []
            for index in remaining:
                cached = store.load(unit_key(units[index]))
                if cached is not None:
                    outcomes[index] = UnitOutcome(
                        index=index, value=cached, from_checkpoint=True
                    )
                    checkpoint_hits += 1
                    if tracker is not None:
                        tracker.charge(
                            len(cached), sum(c.length for c in cached)
                        )
                else:
                    fresh.append(index)
            remaining = fresh
        jitter_seed = fault_tolerance.seed
        if jitter_seed is None:
            jitter_seed = config.seed if config.seed is not None else 0
        retrying = RetryingExecutor(
            inner=self.executor,
            max_retries=fault_tolerance.max_retries,
            base_delay=fault_tolerance.base_delay,
            max_delay=fault_tolerance.max_delay,
            jitter=fault_tolerance.jitter,
            unit_timeout=fault_tolerance.unit_timeout,
            validate=validate_unit_result,
            seed=jitter_seed,
        )
        # One batch per bagging round (same sample_id across classes):
        # the budget truncates at round boundaries, and a first
        # SIGINT/SIGTERM stops cleanly *after* the in-flight round — by
        # then every completed unit is already checkpointed, so nothing
        # is lost. A second signal force-exits via KeyboardInterrupt.
        by_round: dict[int, list[int]] = {}
        for index in remaining:
            by_round.setdefault(units[index].sample_id, []).append(index)
        batches = [by_round[s] for s in sorted(by_round)]
        n_computed = 0
        rounds_run = 0
        interrupted = False
        with GracefulInterrupt() as interrupt:
            for batch_no, batch in enumerate(batches):
                if batch_no > 0 and (
                    interrupt.triggered
                    or (tracker is not None and tracker.exhausted)
                ):
                    interrupted = interrupt.triggered
                    break
                computed = retrying.map_with_outcomes(
                    worker, [units[i] for i in batch]
                )
                rounds_run += 1
                for index, outcome in zip(batch, computed):
                    outcome.index = index
                    outcomes[index] = outcome
                    n_computed += 1
                    if store is not None and outcome.ok:
                        store.save(unit_key(units[index]), outcome.value)
                    if tracker is not None and outcome.ok:
                        tracker.charge(
                            len(outcome.value),
                            sum(c.length for c in outcome.value),
                        )
            interrupted = interrupted or interrupt.triggered
        if tracker is not None:
            tracker.record_phase(
                "generation",
                rounds_completed=rounds_run,
                rounds_total=len(batches),
                truncated=rounds_run < len(batches),
            )
        stats = {
            "checkpoint_hits": checkpoint_hits,
            "n_units_computed": n_computed,
            "executor_degraded": retrying.degraded_,
            "interrupted": interrupted,
        }
        attempted = [
            (units[i], outcomes[i])
            for i in range(len(units))
            if outcomes[i] is not None
        ]
        return (
            [u for u, _ in attempted],
            [o for _, o in attempted],
            stats,
        )

    def _merge_outcomes(
        self,
        units: list[WorkUnit],
        outcomes: list[UnitOutcome],
        quorum: float,
    ) -> tuple[CandidatePool, dict]:
        """Degraded merge: combine surviving units under a per-class quorum.

        Candidates are merged in unit order (deterministic); duplicated
        deliveries within a unit are dropped. If any class's success
        fraction falls below ``quorum``, raises :class:`QuorumError`
        naming the offending classes; otherwise the lost units are
        recorded so callers can see exactly what degraded.
        """
        pool = CandidatePool()
        failed_units: list[tuple[int, int]] = []
        errors: list[str] = []
        duplicates_dropped = 0
        succeeded: dict[int, int] = {}
        totals: dict[int, int] = {}
        for unit, outcome in zip(units, outcomes):
            totals[unit.label] = totals.get(unit.label, 0) + 1
            if not outcome.ok:
                failed_units.append((unit.label, unit.sample_id))
                errors.append(
                    f"unit (class={unit.label}, sample={unit.sample_id}): "
                    f"{outcome.error}"
                )
                continue
            succeeded[unit.label] = succeeded.get(unit.label, 0) + 1
            seen_in_unit: set[Candidate] = set()
            for candidate in outcome.value:
                if candidate in seen_in_unit:
                    duplicates_dropped += 1
                    continue
                seen_in_unit.add(candidate)
                pool.add(candidate)
        below = {
            label: succeeded.get(label, 0) / total
            for label, total in totals.items()
            if succeeded.get(label, 0) / total + 1e-12 < quorum
        }
        if below:
            detail = ", ".join(
                f"class {label}: {fraction:.0%} of units succeeded"
                for label, fraction in sorted(below.items())
            )
            raise QuorumError(
                f"quorum {quorum:.0%} unmet after retries ({detail}); "
                f"{len(failed_units)} units lost. First failures: "
                + "; ".join(errors[:3])
            )
        recovered = sum(
            1 for o in outcomes if o.ok and not o.from_checkpoint and o.attempts > 1
        )
        stats = {
            "failed_units": failed_units,
            "recovered_units": recovered,
            "duplicates_dropped": duplicates_dropped,
            "units_per_class": {
                label: {"ok": succeeded.get(label, 0), "total": total}
                for label, total in sorted(totals.items())
            },
        }
        return pool, stats

    def discover(self, dataset: Dataset) -> DiscoveryResult:
        """Distributed Algorithm 1, then the usual Algorithms 2-4.

        Fail-fast by default (any worker exception propagates, as the
        original implementation did); with ``config.fault_tolerance`` set
        or a ``fault_plan`` injected, the resilient path described in the
        module docstring runs instead. In the trace modes every work unit
        leaves a ``"unit"`` event recording its attempts, checkpoint
        provenance, and final fate.
        """
        if dataset.n_series < 1:
            raise ValidationError("empty dataset")
        config = self.config
        tracer = self._pending_tracer
        self._pending_tracer = None
        if tracer is None:
            tracer = make_tracer(config.observability)
        self.trace_ = tracer if tracer.active else None
        if tracer.active:
            tracer.manifest = run_manifest(config, dataset)
        tracker = config.budget.start() if config.budget is not None else None
        with tracer.span(
            "discover",
            distributed=True,
            n_series=dataset.n_series,
            n_classes=dataset.n_classes,
            series_length=dataset.series_length,
            k=config.k,
            seed=config.seed,
        ):
            result = self._discover_inner(dataset, tracker, tracer)
        if tracer.active:
            result.extra["trace"] = tracer
            if tracer.mode == "trace+jsonl":
                tracer.to_jsonl(config.obs_jsonl_path or DEFAULT_JSONL_PATH)
        return result

    def _discover_inner(self, dataset: Dataset, tracker, tracer) -> DiscoveryResult:
        """The phases of :meth:`discover`, inside the root span."""
        config = self.config

        start = time.perf_counter()
        with tracer.span("generation", q_n=config.q_n) as gen_span:
            units = self.build_work_units(dataset)
            gen_span.set(n_units=len(units))
            fault_tolerance = config.fault_tolerance
            worker = generate_unit_candidates
            if self.fault_plan is not None:
                worker = FaultInjector(worker, self.fault_plan)
                if fault_tolerance is None:
                    fault_tolerance = FaultToleranceConfig()

            run_stats: dict = {}
            attempted_units = units
            if fault_tolerance is None and tracker is None:
                per_unit = self.executor.map(worker, units)
                outcomes = [
                    UnitOutcome(index=i, value=value)
                    for i, value in enumerate(per_unit)
                ]
                quorum = 1.0
            elif fault_tolerance is None:
                # Fail-fast semantics, but executed one round (same sample_id
                # across classes) at a time so the budget can truncate at a
                # deterministic round boundary. The first round always runs.
                by_round: dict[int, list[int]] = {}
                for i, unit in enumerate(units):
                    by_round.setdefault(unit.sample_id, []).append(i)
                attempted: list[tuple[WorkUnit, UnitOutcome]] = []
                rounds_run = 0
                rounds = [by_round[s] for s in sorted(by_round)]
                for round_no, batch in enumerate(rounds):
                    if round_no > 0 and tracker.exhausted:
                        break
                    values = self.executor.map(worker, [units[i] for i in batch])
                    rounds_run += 1
                    for i, value in zip(batch, values):
                        attempted.append(
                            (units[i], UnitOutcome(index=i, value=value))
                        )
                        tracker.charge(len(value), sum(c.length for c in value))
                attempted.sort(key=lambda pair: pair[1].index)
                attempted_units = [u for u, _ in attempted]
                outcomes = [o for _, o in attempted]
                tracker.record_phase(
                    "generation",
                    rounds_completed=rounds_run,
                    rounds_total=len(rounds),
                    truncated=rounds_run < len(rounds),
                )
                quorum = 1.0
            else:
                attempted_units, outcomes, run_stats = self._run_fault_tolerant(
                    dataset, units, worker, fault_tolerance, tracker
                )
                quorum = fault_tolerance.quorum
            if tracer.active:
                for unit, outcome in zip(attempted_units, outcomes):
                    tracer.event(
                        "unit",
                        label=unit.label,
                        sample_id=unit.sample_id,
                        ok=outcome.ok,
                        attempts=outcome.attempts,
                        from_checkpoint=outcome.from_checkpoint,
                        elapsed=outcome.elapsed,
                        error=outcome.error,
                    )
                    if not outcome.ok:
                        tracer.count("units.failed")
                    elif outcome.from_checkpoint:
                        tracer.count("units.from_checkpoint")
                    elif outcome.attempts > 1:
                        tracer.count("units.recovered")
            pool, merge_stats = self._merge_outcomes(
                attempted_units, outcomes, quorum
            )
            if len(pool) == 0:
                raise EmptyPoolError(
                    "distributed generation produced no candidates"
                )
            gen_span.set(
                n_units_attempted=len(attempted_units), n_candidates=len(pool)
            )
            tracer.count("candidates.generated", len(pool))
        time_generation = time.perf_counter() - start

        out_of_budget = tracker is not None and tracker.exhausted
        if out_of_budget:
            tracer.event(
                "budget.exhausted", phase="generation", reason=tracker.check()
            )
        start = time.perf_counter()
        with tracer.span("pruning") as prune_span:
            if out_of_budget:
                # Anytime truncation: skip pruning, fall back to brute scoring.
                dabf = None
                pruned, report = pool.copy(), PruneReport()
                prune_span.set(method="skipped(budget)")
            elif dataset.n_classes > 1:
                with tracer.span("dabf.build"):
                    dabf = DABF.build(
                        pool,
                        scheme=config.lsh_scheme,
                        n_projections=config.n_projections,
                        bins=config.bins,
                        seed=config.seed,
                    )
                with tracer.span("dabf.prune"):
                    pruned, report = dabf.prune(pool, theta=config.theta)
                    pruned = restore_emptied_classes(pool, pruned)
                prune_span.set(method="dabf")
            else:
                dabf = DABF.build(pool, seed=config.seed)
                pruned, report = pool.copy(), PruneReport()
                prune_span.set(method="single-class-passthrough")
            prune_span.set(n_removed=report.n_removed, n_kept=len(pruned))
            tracer.count("candidates.pruned", report.n_removed)
        time_pruning = time.perf_counter() - start
        if tracker is not None:
            tracker.record_phase("pruning", skipped=out_of_budget)

        start = time.perf_counter()

        def _score(active_pool: CandidatePool, label: int) -> UtilityScores:
            if dabf is None:
                return score_candidates_brute(
                    dataset,
                    active_pool,
                    label,
                    use_cr=False,
                    normalize=config.normalize_utility_sums,
                )
            return score_candidates_dt(
                dataset,
                active_pool,
                label,
                dabf,
                normalize=config.normalize_utility_sums,
            )

        with tracer.span("selection", dt_used=dabf is not None):
            scores_by_class = score_with_class_fallback(
                _score, pruned, pool, range(dataset.n_classes), tracer=tracer
            )
            shapelets = select_top_k_per_class(scores_by_class, config.k)
        time_selection = time.perf_counter() - start

        extra = {
            "n_work_units": len(units),
            "prune_report": report,
            **merge_stats,
            **run_stats,
        }
        completed = not run_stats.get("interrupted", False)
        if tracker is not None:
            tracker.record_phase(
                "selection",
                classes_scored=len(scores_by_class),
                dt_used=dabf is not None,
            )
            completed = completed and not (
                tracker.progress.get("generation", {}).get("truncated", False)
                or out_of_budget
            )
            extra["budget"] = tracker.snapshot()
        return DiscoveryResult(
            shapelets=shapelets,
            n_candidates_generated=len(pool),
            n_candidates_after_pruning=len(pruned),
            time_candidate_generation=time_generation,
            time_pruning=time_pruning,
            time_selection=time_selection,
            completed=completed,
            extra=extra,
        )
