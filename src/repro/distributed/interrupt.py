"""Graceful SIGINT/SIGTERM handling for long-running coordinators.

A campaign (or a distributed discovery run) killed with Ctrl-C should
not lose its in-flight round: completed work is already persisted, so
the right response to a *first* signal is "finish the current unit of
work, flush state, and stop cleanly". Only a *second* signal means
"really stop now".

:class:`GracefulInterrupt` is a context manager implementing exactly
that ladder:

* on entry it installs handlers for SIGINT and SIGTERM (when possible —
  handlers can only be installed from the main thread; elsewhere it
  degrades to a no-op and ``triggered`` simply never latches);
* the first signal latches :attr:`triggered`; the enclosing loop is
  expected to poll it at its next safe boundary and wind down;
* a second signal raises :class:`KeyboardInterrupt` immediately
  (force exit — the operator insisted);
* on exit the previous handlers are restored, whatever happened.

The latch is deliberately *sticky*: code that checks ``triggered`` at a
round boundary sees the same answer no matter how the scheduler
interleaved the signal with the round.
"""

from __future__ import annotations

import signal


class GracefulInterrupt:
    """Latch the first SIGINT/SIGTERM; force-exit on the second.

    Example
    -------
    ::

        with GracefulInterrupt() as interrupt:
            for cell in cells:
                if interrupt.triggered:
                    break           # flush + checkpoint happen below
                run(cell)
    """

    #: Signals covered by the ladder. SIGTERM is what process managers
    #: and ``kill`` send by default; SIGINT is Ctrl-C.
    SIGNALS = ("SIGINT", "SIGTERM")

    def __init__(self) -> None:
        self.triggered = False
        #: Name of the first signal received (``None`` until triggered).
        self.signal_name: str | None = None
        self._previous: dict[int, object] = {}
        self._installed = False

    def _handle(self, signum: int, frame) -> None:
        if self.triggered:
            raise KeyboardInterrupt(
                f"second {signal.Signals(signum).name} received; force exit"
            )
        self.triggered = True
        self.signal_name = signal.Signals(signum).name

    def __enter__(self) -> "GracefulInterrupt":
        for name in self.SIGNALS:
            signum = getattr(signal, name, None)
            if signum is None:  # pragma: no cover - platform without signal
                continue
            try:
                self._previous[signum] = signal.signal(signum, self._handle)
                self._installed = True
            except ValueError:
                # Not the main thread: handlers cannot be installed.
                # Degrade to a no-op latch rather than breaking the run.
                break
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except ValueError:  # pragma: no cover - torn-down interpreter
                pass
        self._previous.clear()
        self._installed = False


__all__ = ["GracefulInterrupt"]
