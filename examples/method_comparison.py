"""Compare every runnable method on one dataset (a mini Table VI row).

Run:  python examples/method_comparison.py [dataset]

Evaluates IPS against the implemented baselines — BASE, BSPCOVER, Fast
Shapelets, LTS, ST, SD, Rotation Forest, 1NN-ED, 1NN-DTW — on a synthetic
UCR stand-in, reporting accuracy and discovery time side by side.
"""

from __future__ import annotations

import sys

from repro.benchlib import evaluate_method, method_names, print_table
from repro.datasets import load_dataset


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "GunPoint"
    data = load_dataset(name, seed=0, max_train=24, max_test=60, max_length=120)
    print(f"dataset: {data.train.describe()}")

    overrides = {
        "IPS": {"q_n": 10, "q_s": 3},
        "LTS": {"epochs": 200},
        "ST": {"max_candidates": 200},
    }
    rows = []
    for method in method_names():
        result = evaluate_method(
            method, data, k=5, seed=0, **overrides.get(method, {})
        )
        rows.append(
            [method, 100.0 * result.accuracy, result.discovery_seconds, result.total_seconds]
        )
    rows.sort(key=lambda row: -row[1])
    print_table(
        ["method", "accuracy %", "discovery (s)", "fit total (s)"],
        rows,
        title=f"Method comparison on {name}",
    )


if __name__ == "__main__":
    main()
