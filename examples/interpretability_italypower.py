"""Interpretability case study (the paper's Fig. 13): ItalyPowerDemand.

Run:  python examples/interpretability_italypower.py

Discovers shapelets with both IPS and BSPCOVER on daily electricity-load
curves (class 1 = summer, class 2 = winter), then renders where on the
24-hour axis the shapelets fall as ASCII sparklines. The paper's reading:
both methods isolate the *morning heating bump* that separates winter
from summer, and IPS finds it several times faster.
"""

from __future__ import annotations

import time

import numpy as np

from repro import IPSClassifier, IPSConfig, load_dataset
from repro.baselines import BSPCover

_SPARK = " .:-=+*#%@"


def sparkline(values: np.ndarray, width: int = 48) -> str:
    """Render a series as a one-line ASCII sparkline."""
    from repro.ts.preprocessing import linear_interpolate_resample

    resampled = linear_interpolate_resample(np.asarray(values, float), width)
    lo, hi = resampled.min(), resampled.max()
    span = hi - lo if hi > lo else 1.0
    levels = ((resampled - lo) / span * (len(_SPARK) - 1)).astype(int)
    return "".join(_SPARK[level] for level in levels)


def main() -> None:
    data = load_dataset("ItalyPowerDemand", seed=0, max_train=40, max_test=100)
    train = data.train
    hours_per_sample = 24.0 / train.series_length

    summer = train.series_of_class(0).mean(axis=0)
    winter = train.series_of_class(1).mean(axis=0)
    print("class means over the day (summer vs winter):")
    print(f"  summer |{sparkline(summer)}|")
    print(f"  winter |{sparkline(winter)}|")
    gap_hour = float(np.argmax(np.abs(winter - summer))) * hours_per_sample
    print(f"  largest class gap at ~{gap_hour:.0f}:00 (the morning heating bump)\n")

    start = time.perf_counter()
    ips = IPSClassifier(IPSConfig(k=5, q_n=10, q_s=3, seed=0)).fit_dataset(train)
    t_ips = time.perf_counter() - start
    start = time.perf_counter()
    bsp = BSPCover(k=5, seed=0).fit_dataset(train)
    t_bsp = time.perf_counter() - start

    y_test = data.test.classes_[data.test.y]
    print(f"IPS:      accuracy {ips.score(data.test.X, y_test):.3f}, fit {t_ips:.2f}s")
    print(f"BSPCOVER: accuracy {bsp.score(data.test.X, y_test):.3f}, fit {t_bsp:.2f}s")
    print(f"IPS is {t_bsp / max(t_ips, 1e-9):.1f}x faster (paper reports ~4x)\n")

    for name, model in (("IPS", ips), ("BSPCOVER", bsp)):
        print(f"{name} shapelets (class, hours covered, shape):")
        for shapelet in model.shapelets_[:4]:
            start_h = shapelet.start * hours_per_sample
            end_h = (shapelet.start + shapelet.length) * hours_per_sample
            print(
                f"  class {shapelet.label}  {start_h:4.1f}h-{end_h:4.1f}h  "
                f"|{sparkline(shapelet.values, width=24)}|"
            )
        print()


if __name__ == "__main__":
    main()
