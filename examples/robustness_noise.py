"""Robustness study: IPS accuracy under deployment perturbations.

Run:  python examples/robustness_noise.py

Trains IPS once on clean data, then evaluates on test sets corrupted by
the perturbations a deployed sensor pipeline produces — Gaussian noise,
spikes, dropouts, baseline drift, and clock warp — at increasing severity.

The measured pattern is instructive and perhaps counter-intuitive:

* **structural** corruption (dropout with interpolation, mild clock warp)
  barely touches IPS — the sliding Def.-4 distance still finds the class
  pattern;
* **additive** corruption (point noise, spikes, drift) hurts IPS *faster*
  than whole-series 1NN-ED: a length-L shapelet window averages noise over
  only L samples while 1NN-ED averages over the full series, and the
  transform's absolute distance features shift under any additive energy.

The practical mitigation is smoothing the input (``repro.ts.moving_average``)
or training with noise augmentation — both one-liners with this API.
"""

from __future__ import annotations

import numpy as np

from repro import IPSClassifier, IPSConfig, load_dataset
from repro.classify import OneNearestNeighbor
from repro.datasets.perturb import (
    add_baseline_drift,
    add_dropout,
    add_gaussian_noise,
    add_spikes,
    time_warp,
)
from repro.benchlib import print_table


def main() -> None:
    data = load_dataset("GunPoint", seed=0, max_train=30, max_test=80, max_length=120)
    y_test = data.test.classes_[data.test.y]

    ips = IPSClassifier(IPSConfig(k=5, q_n=10, q_s=3, seed=0)).fit_dataset(data.train)
    nn = OneNearestNeighbor("euclidean").fit(data.train.X, data.train.y)

    def nn_score(X: np.ndarray) -> float:
        return float(
            np.mean(data.train.classes_[nn.predict(X)] == y_test)
        )

    perturbations = [
        ("clean", lambda X: X),
        ("noise sd=0.1", lambda X: add_gaussian_noise(X, 0.1, seed=1)),
        ("noise sd=0.3", lambda X: add_gaussian_noise(X, 0.3, seed=1)),
        ("spikes 2%", lambda X: add_spikes(X, rate=0.02, seed=1)),
        ("spikes 10%", lambda X: add_spikes(X, rate=0.10, seed=1)),
        ("dropout 10%", lambda X: add_dropout(X, rate=0.10, seed=1)),
        ("dropout 30%", lambda X: add_dropout(X, rate=0.30, seed=1)),
        ("drift x0.5", lambda X: add_baseline_drift(X, magnitude=0.5, seed=1)),
        ("warp 10%", lambda X: time_warp(X, max_warp=0.10, seed=1)),
    ]
    rows = []
    for label, perturb in perturbations:
        X_corrupt = perturb(data.test.X)
        rows.append(
            [
                label,
                100.0 * ips.score(X_corrupt, y_test),
                100.0 * nn_score(X_corrupt),
            ]
        )
    print_table(
        ["perturbation", "IPS acc %", "1NN-ED acc %"],
        rows,
        title="Robustness on GunPoint-like data (trained clean, tested corrupted)",
    )
    print(
        "Reading: IPS shrugs off structural corruption (dropout, warp) but\n"
        "additive noise/spikes/drift hit its short-window distance features\n"
        "harder than whole-series 1NN-ED; smooth or augment when deploying\n"
        "on noisy sensors."
    )

    # The one-line mitigation: smooth the corrupted input before scoring.
    from repro.ts import moving_average

    noisy = add_gaussian_noise(data.test.X, 0.3, seed=1)
    smoothed = np.vstack([moving_average(row, 5) for row in noisy])
    print(
        f"\nmitigation check (noise sd=0.3): raw {100 * ips.score(noisy, y_test):.1f}% "
        f"-> smoothed {100 * ips.score(smoothed, y_test):.1f}%"
    )


if __name__ == "__main__":
    main()
