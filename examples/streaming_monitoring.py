"""Online motif/discord monitoring with the streaming matrix profile.

Run:  python examples/streaming_monitoring.py

A deployment companion to shapelet discovery: a sensor appends points one
at a time; the incremental matrix profile (STAMPI) keeps the motif and
discord structure current at O(N log N) per point instead of O(N^2)
recomputation. The demo streams a signal containing a repeating pattern
(a motif to be discovered) and a late anomaly (a discord), reporting both
as soon as the profile sees them, and verifies the incremental profile
matches a from-scratch batch computation.
"""

from __future__ import annotations

import numpy as np

from repro.matrixprofile.streaming import StreamingMatrixProfile
from repro.viz import line_plot


def make_stream(seed: int = 0) -> np.ndarray:
    """Noise with a repeated heartbeat-ish pattern and one late anomaly."""
    rng = np.random.default_rng(seed)
    stream = rng.normal(scale=0.4, size=400)
    pattern = np.sin(np.linspace(0, 3 * np.pi, 25)) * 3.0
    for start in (50, 180, 300):
        stream[start : start + 25] += pattern
    # The anomaly: a burst unlike anything else.
    stream[350:365] += rng.normal(scale=5.0, size=15)
    return stream


def main() -> None:
    stream_data = make_stream()
    window = 25
    # Raw (non-normalized) distances: the planted anomaly is an *amplitude*
    # burst, which z-normalization would erase. Use normalized=True when
    # hunting shape anomalies instead.
    monitor = StreamingMatrixProfile(window=window, normalized=False)

    checkpoints = (120, 220, 340, 400)
    consumed = 0
    for checkpoint in checkpoints:
        monitor.extend(stream_data[consumed:checkpoint])
        consumed = checkpoint
        profile = monitor.profile()
        motif_pos, motif_val = profile.motif()
        discord_pos, discord_val = profile.discord()
        print(
            f"after {checkpoint:3d} points: motif @ {motif_pos} "
            f"(dist {motif_val:.2f}), discord @ {discord_pos} "
            f"(dist {discord_val:.2f})"
        )

    print("\nfinal profile (low = motif, high = discord):")
    final = monitor.profile()
    finite = np.where(np.isfinite(final.values), final.values, np.nan)
    finite = np.nan_to_num(finite, nan=float(np.nanmax(finite)))
    print(line_plot(finite, width=72, height=8, marks=[final.motif()[0], final.discord()[0]]))
    print("(^ marks: left-to-right positions of the final motif and discord)")

    exact = monitor.check_against_batch()
    print(f"\nincremental profile exactly matches batch STOMP: {exact}")
    assert exact
    # The final discord must sit on the planted anomaly burst.
    discord_pos = final.discord()[0]
    assert 350 - window < discord_pos < 365, discord_pos
    print(f"discord correctly localizes the anomaly burst (position {discord_pos})")


if __name__ == "__main__":
    main()
