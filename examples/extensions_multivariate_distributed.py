"""The paper's future-work extensions: multivariate and distributed IPS.

Run:  python examples/extensions_multivariate_distributed.py

The paper's conclusion names two directions: "a distributed shapelet
discovery version of IPS" and "apply the IPS for multivariate TSC". Both
are implemented here:

1. **Multivariate** — a 3-channel gesture-like dataset where only channel
   0 carries the class signal; per-dimension IPS discovery + a joint SVM
   recovers the class structure, and the per-dimension shapelet counts
   show which channels mattered.
2. **Distributed** — the same discovery partitioned into (class, sample)
   work units and fanned out over serial / thread / process executors,
   with bit-identical results.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import IPSConfig
from repro.datasets import make_planted_dataset
from repro.distributed import (
    DistributedIPS,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.multivariate import MultivariateIPSClassifier


def multivariate_demo() -> None:
    """Per-dimension IPS on 3-channel data (channel 0 = signal)."""
    print("=== multivariate IPS ===")
    n, length = 40, 80
    signal = make_planted_dataset(n_classes=2, n_instances=n, length=length, seed=5)
    rng = np.random.default_rng(5)
    X = np.empty((n, 3, length))
    X[:, 0, :] = signal.X                       # discriminative channel
    X[:, 1, :] = rng.normal(size=(n, length))   # noise channel
    X[:, 2, :] = np.cumsum(rng.normal(size=(n, length)), axis=1) * 0.1  # drift
    y = signal.classes_[signal.y]

    config = IPSConfig(k=3, q_n=8, q_s=3, length_ratios=(0.2, 0.35), seed=0)
    clf = MultivariateIPSClassifier(config).fit(X[:24], y[:24])
    accuracy = clf.score(X[24:], y[24:])
    print(f"3-channel accuracy: {accuracy:.3f}")
    for dim, shapelets in sorted(clf.shapelets_per_dim_.items()):
        print(f"  channel {dim}: {len(shapelets)} shapelets")
    print()


def distributed_demo() -> None:
    """Same discovery, three executors, identical results."""
    print("=== distributed IPS ===")
    dataset = make_planted_dataset(n_classes=3, n_instances=24, length=100, seed=9)
    config = IPSConfig(k=3, q_n=8, q_s=3, length_ratios=(0.15, 0.3), seed=0)

    results = {}
    for name, executor in (
        ("serial", SerialExecutor()),
        ("threads", ThreadExecutor(max_workers=4)),
        ("processes", ProcessExecutor(max_workers=2)),
    ):
        start = time.perf_counter()
        result = DistributedIPS(config, executor).discover(dataset)
        elapsed = time.perf_counter() - start
        results[name] = result
        print(
            f"  {name:10s}: {result.extra['n_work_units']} units, "
            f"{result.n_candidates_generated} candidates, "
            f"{len(result.shapelets)} shapelets, {elapsed:.2f}s"
        )

    reference = results["serial"].shapelets
    for name in ("threads", "processes"):
        identical = all(
            np.array_equal(a.values, b.values)
            for a, b in zip(reference, results[name].shapelets)
        )
        print(f"  {name} results identical to serial: {identical}")


if __name__ == "__main__":
    multivariate_demo()
    distributed_demo()
