"""The two issues of the MP baseline (Section II-B, Figures 1-4 and 6).

Run:  python examples/mp_baseline_issues.py

Reconstructs the paper's motivating pipeline on ArrowHead-like data:

1. concatenate the per-class training instances into T_A and T_B (Fig. 1);
2. compute the self-join profile P_AA and the AB-join P_AB (Fig. 3);
3. take diff(P_AB, P_AA) and pick the largest differences as "shapelets"
   (Fig. 4 / Formula 4);
4. show issue 1 (discords as "shapelets"): among the top differences there
   are windows whose OWN-class profile value is also extreme — they are
   rare everywhere, not class-representative;
5. show issue 2 (lack of diversity): the top-5 picks cluster around
   neighbouring positions.
"""

from __future__ import annotations

import numpy as np

from repro import load_dataset
from repro.matrixprofile import ab_join, profile_diff, stomp_self_join
from repro.ts.concat import concatenate_series


def main() -> None:
    data = load_dataset("ArrowHead", seed=0, max_train=24, max_test=10, max_length=120)
    train = data.train
    window = train.series_length // 5

    rows_a = train.class_indices(0)
    rows_b = np.flatnonzero(train.y != 0)
    t_a = concatenate_series(train.X[rows_a], instance_ids=rows_a)
    t_b = concatenate_series(train.X[rows_b], instance_ids=rows_b)
    print(f"T_A: {len(t_a)} points from {t_a.n_instances} instances")
    print(f"T_B: {len(t_b)} points from {t_b.n_instances} instances")

    p_aa = stomp_self_join(t_a.values, window, valid_mask=t_a.valid_window_mask(window))
    p_ab = ab_join(
        t_a.values,
        t_b.values,
        window,
        valid_mask_a=t_a.valid_window_mask(window),
        valid_mask_b=t_b.valid_window_mask(window),
    )
    diff = profile_diff(p_ab, p_aa)

    finite = np.isfinite(diff)
    print(
        f"\nprofile diff over {finite.sum()} valid windows: "
        f"max {diff[finite].max():.3f}, median {np.median(diff[finite]):.3f}"
    )

    # Top-5 largest differences (the baseline's "shapelets").
    order = np.argsort(np.where(finite, diff, -np.inf))[::-1][:5]
    own_values = p_aa.values[finite]
    discord_threshold = np.quantile(own_values, 0.9)
    print("\ntop-5 largest-difference windows (the BASE picks):")
    n_discords = 0
    for rank, pos in enumerate(order, 1):
        own = p_aa.values[pos]
        is_discord = own >= discord_threshold
        n_discords += is_discord
        instance, offset = t_a.locate(int(pos), window)
        print(
            f"  #{rank}: position {pos} (instance {instance}, offset {offset}) "
            f"diff={diff[pos]:.3f} own-class P_AA={own:.3f}"
            f"{'   <-- discord in its own class (issue 1)' if is_discord else ''}"
        )

    gaps = [abs(int(order[i]) - int(order[j]))
            for i in range(len(order)) for j in range(i + 1, len(order))]
    print(
        f"\nissue 2 (diversity): min pairwise gap between the top-5 picks is "
        f"{min(gaps)} samples (window length {window}) — overlapping picks "
        f"describe the same subsequence."
    )
    if n_discords:
        print(
            f"issue 1 (discords as shapelets): {n_discords}/5 picks are in the "
            f"top decile of their OWN class's profile — rare in class A too, "
            f"contradicting the shapelet definition."
        )


if __name__ == "__main__":
    main()
