"""Use the IPS API on your own numpy arrays.

Run:  python examples/custom_data.py

Shows the minimal integration path for a downstream user: build a labelled
dataset from raw ``(M, N)`` arrays, tune the IPS configuration, inspect
each pipeline stage (candidate pool, DABF pruning report, utilities), and
reuse the discovered shapelets for transform-only feature extraction.
"""

from __future__ import annotations

import numpy as np

from repro import Dataset, IPSConfig
from repro.core import IPS, ShapeletTransform
from repro.classify import OneVsRestSVM, StandardScaler


def make_sensor_like_data(n: int, length: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """Fake 'vibration sensor' data: class 1 contains a fault signature."""
    rng = np.random.default_rng(seed)
    X = rng.normal(scale=0.5, size=(n, length))
    y = rng.integers(0, 2, size=n)
    t = np.linspace(0, 3 * np.pi, length // 4)
    fault = np.sin(5 * t) * np.exp(-t / 3) * 3.0
    for i in np.flatnonzero(y == 1):
        start = rng.integers(0, length - fault.size)
        X[i, start : start + fault.size] += fault
    return X, y


def main() -> None:
    X, y = make_sensor_like_data(n=40, length=160, seed=7)
    dataset = Dataset(X=X[:24], y=y[:24], name="vibration")
    holdout_X, holdout_y = X[24:], y[24:]
    print(dataset.describe())

    # 1. Discovery only: run the pipeline stages by hand.
    config = IPSConfig(k=3, q_n=10, q_s=3, length_ratios=(0.15, 0.25), seed=0)
    discoverer = IPS(config)
    result = discoverer.discover(dataset)
    prune_report = result.extra["prune_report"]
    print(
        f"\ncandidates {result.n_candidates_generated} -> "
        f"{result.n_candidates_after_pruning} "
        f"(removed per class: {prune_report.removed_per_class})"
    )
    for shapelet in result.shapelets:
        print(
            f"  shapelet class={shapelet.label} len={shapelet.length} "
            f"u={shapelet.score:.4f}"
        )

    # 2. Reuse the shapelets for feature extraction + your own classifier.
    transform = ShapeletTransform(result.shapelets)
    scaler = StandardScaler()
    train_features = scaler.fit_transform(transform.transform(dataset.X))
    model = OneVsRestSVM(C=1.0, seed=0).fit(train_features, dataset.y)

    holdout_features = scaler.transform(transform.transform(holdout_X))
    predictions = dataset.classes_[model.predict(holdout_features)]
    accuracy = float(np.mean(predictions == holdout_y))
    print(f"\nholdout accuracy with custom stack: {accuracy:.3f}")


if __name__ == "__main__":
    main()
