"""Quickstart: discover shapelets with IPS and classify a dataset.

Run:  python examples/quickstart.py

Loads a synthetic stand-in for the UCR ItalyPowerDemand dataset (see
DESIGN.md for the substitution), fits the full IPS pipeline — instance
profile candidate generation, DABF pruning, utility scoring with DT & CR,
top-k selection, shapelet transform + linear SVM — and reports accuracy,
timing, and the discovered shapelets.
"""

from __future__ import annotations

from repro import IPSClassifier, IPSConfig, load_dataset


def main() -> None:
    data = load_dataset("ItalyPowerDemand", seed=0, max_train=40, max_test=100)
    print(f"train: {data.train.describe()}")
    print(f"test:  {data.test.describe()}")

    config = IPSConfig(k=5, q_n=10, q_s=3, seed=0)
    clf = IPSClassifier(config).fit_dataset(data.train)

    result = clf.discovery_result_
    print(
        f"\ncandidates: {result.n_candidates_generated} generated, "
        f"{result.n_candidates_after_pruning} after DABF pruning "
        f"({100 * result.pruning_rate:.0f}% pruned)"
    )
    print(
        f"stage times: generation {result.time_candidate_generation:.2f}s, "
        f"pruning {result.time_pruning:.2f}s, "
        f"selection {result.time_selection:.2f}s"
    )

    accuracy = clf.score(data.test.X, data.test.classes_[data.test.y])
    print(f"\ntest accuracy: {accuracy:.3f}\n")

    from repro.core.report import describe_discovery

    print(describe_discovery(result))


if __name__ == "__main__":
    main()
