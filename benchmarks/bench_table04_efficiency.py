"""Table IV: total discovery time of BASE / BSPCOVER / IPS + speedups.

The paper's headline efficiency result: IPS is ~1.2x BASE and ~25x faster
than BSPCOVER on average over 46 datasets. Regenerated on a representative
10-dataset panel at laptop scale; the published average ratios are printed
for comparison. Absolute seconds differ (different hardware and sizes);
the *ordering* (BASE <= IPS << BSPCOVER) must hold.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.bspcover import BSPCover
from repro.baselines.mp_base import MPBaseline
from repro.baselines.published import PUBLISHED_RUNTIME_SECONDS
from repro.benchlib.timing import timed
from repro.core.config import IPSConfig
from repro.core.pipeline import IPS
from repro.datasets.loader import load_dataset

from _bench_common import SMALL_CAPS, SWEEP_DATASETS


def _time_row(name: str):
    data = load_dataset(name, seed=0, max_train=24, max_test=20, max_length=150)
    base = MPBaseline(k=5, seed=0)
    _, t_base = timed(lambda: base.discover(data.train))
    # stride_fraction=0.1: the real BSPCOVER enumerates every position;
    # the dense stride is the faithful (and slower) setting. The measured
    # BSPCOVER/IPS gap grows with dataset size toward the paper's ~25x
    # (its candidate count scales with M*N^2, IPS's with Q_N*N^2).
    bsp = BSPCover(k=5, stride_fraction=0.1, seed=0)
    _, t_bsp = timed(lambda: bsp.discover(data.train))
    ips = IPS(IPSConfig(q_n=10, q_s=3, k=5, seed=0))
    result = ips.discover(data.train)
    t_ips = result.total_time
    return [name, t_base, t_bsp, t_ips, t_base and t_ips / t_base, t_bsp / t_ips]


def test_table04_efficiency(benchmark, report):
    rows = [_time_row(name) for name in SWEEP_DATASETS[1:]]
    rows.insert(0, benchmark.pedantic(lambda: _time_row(SWEEP_DATASETS[0]), rounds=1))
    mean_base_ratio = float(np.mean([row[4] for row in rows]))
    mean_bsp_ratio = float(np.mean([row[5] for row in rows]))
    paper_base = np.mean(
        [ips / base for base, _b, ips in PUBLISHED_RUNTIME_SECONDS.values()]
    )
    paper_bsp = np.mean(
        [bsp / ips for _b, bsp, ips in PUBLISHED_RUNTIME_SECONDS.values()]
    )
    report(
        "Table IV: discovery time (s) of BASE / BSPCOVER / IPS and speedups",
        ["dataset", "BASE(s)", "BSPCOVER(s)", "IPS(s)", "IPS/BASE", "BSP/IPS"],
        rows,
        precision=2,
        notes=(
            f"measured means: IPS/BASE={mean_base_ratio:.2f}, "
            f"BSPCOVER/IPS={mean_bsp_ratio:.2f}  |  "
            f"paper means: IPS/BASE={paper_base:.2f}, BSPCOVER/IPS={paper_bsp:.2f}"
        ),
    )
    # Shape assertions: BSPCOVER clearly slowest; IPS within a small factor
    # of BASE on the panel average.
    assert mean_bsp_ratio > 1.5
    assert mean_base_ratio < 8.0
