"""Table III: best-fit distribution of the DABF histograms under NMSE.

The paper fits the z-normalized bucket-center distances of each dataset's
DABF and reports the winning family and its NMSE: normal wins on 9 of 10
datasets. Regenerated on the ten-dataset panel.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.loader import load_dataset
from repro.filters.dabf import DABF
from repro.instanceprofile.candidates import generate_candidates
from repro.instanceprofile.sampling import resolve_lengths

from _bench_common import CAPS, TEN_DATASETS


def _fit_row(name: str):
    data = load_dataset(name, seed=0, **CAPS)
    lengths = resolve_lengths(data.train.series_length, (0.2, 0.4))
    pool = generate_candidates(
        data.train,
        q_n=20,
        q_s=3,
        lengths=lengths,
        motifs_per_profile=2,
        discords_per_profile=2,
        seed=0,
    )
    # znorm_inputs: the distribution experiment hashes z-normalized
    # subsequences (DESIGN.md) so the codomain statistic is shape-driven.
    dabf = DABF.build(pool, bins=12, znorm_inputs=True, seed=0)
    fits = dabf.fits()
    # Report the first class's fit (the paper reports one per dataset).
    fit = fits[min(fits)]
    return [name, fit.name, fit.nmse]


def test_table03_distribution_fit(benchmark, report):
    rows = [_fit_row(name) for name in TEN_DATASETS[1:]]
    rows.insert(0, benchmark.pedantic(lambda: _fit_row(TEN_DATASETS[0]), rounds=1))
    report(
        "Table III: best-fit distribution of DABF histograms under NMSE",
        ["dataset", "best fit", "NMSE"],
        rows,
        precision=3,
        notes=(
            "Paper shape: norm wins on 9/10 datasets (Meat was gamma); "
            "NMSE mostly < 0.25."
        ),
    )
    norm_or_close = sum(1 for row in rows if row[1] in ("norm", "lognorm"))
    assert norm_or_close >= 5, f"gaussian-like fits should dominate: {rows}"
    assert all(np.isfinite(row[2]) for row in rows)
