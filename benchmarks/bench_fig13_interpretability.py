"""Figure 13: the interpretability case study on ItalyPowerDemand.

The paper shows the shapelets discovered by IPS and BSPCOVER both isolate
the morning heating bump that separates winter (class 2) from summer
(class 1) days — and that IPS found its shapelet ~4x faster. Regenerated
here: both methods' top shapelets are located on the 24-hour axis and
checked to overlap the morning window where the class means diverge most.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.bspcover import BSPCover
from repro.benchlib.timing import timed
from repro.core.config import IPSConfig
from repro.core.pipeline import IPSClassifier
from repro.datasets.loader import load_dataset


def _hour_of(index: int, length: int) -> float:
    return 24.0 * index / length


def test_fig13_interpretability(benchmark, report):
    data = load_dataset("ItalyPowerDemand", seed=0, max_train=40, max_test=80)
    train = data.train
    length = train.series_length

    ips = IPSClassifier(IPSConfig(q_n=10, q_s=3, k=5, seed=0))
    _, t_ips = timed(lambda: benchmark.pedantic(
        lambda: ips.fit_dataset(train), rounds=1
    ))
    bsp = BSPCover(k=5, seed=0)
    _, t_bsp = timed(lambda: bsp.fit_dataset(train))

    # Where do the class means diverge? (ground truth: the morning bump)
    summer = train.series_of_class(0).mean(axis=0)
    winter = train.series_of_class(1).mean(axis=0)
    gap = np.abs(winter - summer)
    peak_hour = _hour_of(int(np.argmax(gap)), length)

    rows = []
    morning_hits = {"IPS": 0, "BSPCOVER": 0}
    for method, model in (("IPS", ips), ("BSPCOVER", bsp)):
        for shp in model.shapelets_[:4]:
            start_h = _hour_of(shp.start, length)
            end_h = _hour_of(shp.start + shp.length, length)
            covers = start_h - 1.0 <= peak_hour <= end_h + 1.0
            morning_hits[method] += bool(covers)
            rows.append(
                [
                    f"{method} class={shp.label}",
                    start_h,
                    end_h,
                    "yes" if covers else "no",
                ]
            )
    rows.append(["(class-mean gap peak hour)", peak_hour, peak_hour, "-"])
    report(
        "Fig. 13: shapelet locations on the 24h axis (ItalyPowerDemand)",
        ["shapelet", "start hour", "end hour", "covers peak gap"],
        rows,
        notes=(
            f"IPS fit {t_bsp / max(t_ips, 1e-9):.1f}x faster than BSPCOVER "
            f"(paper: ~4x). Both should place shapelets over the morning "
            f"heating bump."
        ),
    )
    # At least one shapelet from each method must cover the peak-gap hour.
    assert morning_hits["IPS"] >= 1
    assert morning_hits["BSPCOVER"] >= 1
