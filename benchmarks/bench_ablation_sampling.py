"""Extra ablation: sensitivity to the bagging parameters Q_N and Q_S.

Section IV-A explores Q_N in {10, 20, 50, 100} and Q_S in {2, 3, 4, 5, 10}
per dataset. This ablation sweeps a reduced grid on two datasets and
reports accuracy and discovery time — the expected shape is accuracy
saturating with more samples while time grows roughly linearly in Q_N.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import IPSConfig
from repro.core.pipeline import IPSClassifier
from repro.datasets.loader import load_dataset

from _bench_common import SMALL_CAPS

DATASETS = ("ArrowHead", "ItalyPowerDemand")
QN_GRID = (5, 10, 20)
QS_GRID = (2, 3, 5)


def _grid(name: str):
    data = load_dataset(name, seed=0, **SMALL_CAPS)
    y_test = data.test.classes_[data.test.y]
    rows = []
    for q_n in QN_GRID:
        for q_s in QS_GRID:
            clf = IPSClassifier(IPSConfig(q_n=q_n, q_s=q_s, k=5, seed=0))
            clf.fit_dataset(data.train)
            result = clf.discovery_result_
            rows.append(
                [
                    f"{name} Qn={q_n} Qs={q_s}",
                    100.0 * clf.score(data.test.X, y_test),
                    result.total_time,
                    result.n_candidates_generated,
                ]
            )
    return rows


def test_ablation_sampling(benchmark, report):
    from repro.core.tuning import tune_ips

    rows = benchmark.pedantic(lambda: _grid(DATASETS[0]), rounds=1)
    rows = list(rows) + _grid(DATASETS[1])
    # The paper's §IV-A protocol: pick (Q_N, Q_S) per dataset by train CV.
    for name in DATASETS:
        data = load_dataset(name, seed=0, **SMALL_CAPS)
        tuned = tune_ips(
            data.train,
            base_config=IPSConfig(k=5, seed=0),
            qn_grid=QN_GRID,
            qs_grid=QS_GRID,
            k_grid=(5,),
            n_splits=2,
        )
        clf = IPSClassifier(tuned.best_config).fit_dataset(data.train)
        accuracy = 100.0 * clf.score(data.test.X, data.test.classes_[data.test.y])
        cfg = tuned.best_config
        rows.append(
            [
                f"{name} TUNED Qn={cfg.q_n} Qs={cfg.q_s}",
                accuracy,
                clf.discovery_result_.total_time,
                clf.discovery_result_.n_candidates_generated,
            ]
        )
    report(
        "Ablation: IPS accuracy/time vs bagging parameters Q_N, Q_S",
        ["config", "accuracy %", "time (s)", "candidates"],
        rows,
        notes="Shape: time grows ~linearly in Q_N; accuracy saturates.",
    )
    # Candidates scale linearly with Q_N at fixed Q_S.
    def candidates_for(name, q_n, q_s):
        key = f"{name} Qn={q_n} Qs={q_s}"
        return next(r[3] for r in rows if r[0] == key)

    c5 = candidates_for("ArrowHead", 5, 3)
    c20 = candidates_for("ArrowHead", 20, 3)
    assert c20 == 4 * c5
    times = [r[2] for r in rows]
    assert all(t > 0 for t in times)
