"""Extra ablation: accuracy under deployment perturbations.

Companion to ``examples/robustness_noise.py``: IPS and 1NN-ED trained on
clean data, evaluated on corrupted test sets. The asserted shape: IPS is
essentially untouched by structural corruption (interpolated dropout,
mild warp) and degrades under heavy additive corruption.
"""

from __future__ import annotations

import numpy as np

from repro.classify.neighbors import OneNearestNeighbor
from repro.core.config import IPSConfig
from repro.core.pipeline import IPSClassifier
from repro.datasets.loader import load_dataset
from repro.datasets.perturb import add_dropout, add_gaussian_noise, add_spikes, time_warp


def test_ablation_robustness(benchmark, report):
    data = load_dataset("GunPoint", seed=0, max_train=24, max_test=60, max_length=120)
    y_test = data.test.classes_[data.test.y]
    ips = IPSClassifier(IPSConfig(k=5, q_n=8, q_s=3, seed=0))
    benchmark.pedantic(lambda: ips.fit_dataset(data.train), rounds=1)
    nn = OneNearestNeighbor("euclidean").fit(data.train.X, data.train.y)

    def nn_acc(X: np.ndarray) -> float:
        return float(np.mean(data.train.classes_[nn.predict(X)] == y_test))

    perturbations = [
        ("clean", lambda X: X),
        ("noise sd=0.2", lambda X: add_gaussian_noise(X, 0.2, seed=1)),
        ("spikes 5%", lambda X: add_spikes(X, rate=0.05, seed=1)),
        ("dropout 20%", lambda X: add_dropout(X, rate=0.2, seed=1)),
        ("warp 8%", lambda X: time_warp(X, max_warp=0.08, seed=1)),
    ]
    rows = []
    for label, perturb in perturbations:
        X_corrupt = perturb(data.test.X)
        rows.append(
            [label, 100.0 * ips.score(X_corrupt, y_test), 100.0 * nn_acc(X_corrupt)]
        )
    report(
        "Ablation: robustness to deployment perturbations (trained clean)",
        ["perturbation", "IPS acc %", "1NN-ED acc %"],
        rows,
        notes="Shape: structural corruption (dropout/warp) barely moves IPS; "
        "additive corruption (noise/spikes) degrades short-window features.",
    )
    by = {row[0]: row[1] for row in rows}
    assert by["dropout 20%"] >= by["clean"] - 10.0
    assert by["warp 8%"] >= by["clean"] - 10.0
