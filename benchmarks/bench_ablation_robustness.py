"""Extra ablation: accuracy under deployment perturbations and worker faults.

Two robustness axes:

* **data corruption** (companion to ``examples/robustness_noise.py``):
  IPS and 1NN-ED trained on clean data, evaluated on corrupted test sets.
  The asserted shape: IPS is essentially untouched by structural
  corruption (interpolated dropout, mild warp) and degrades under heavy
  additive corruption.
* **infrastructure faults**: distributed discovery run through the real
  fault-injection path (``repro.distributed.faults``) with worker crash /
  NaN-poison / dropped-result rates swept, reporting accuracy plus how
  many units the retry layer recovered or permanently lost per rate. The
  asserted shape: with retries enabled, injected faults are fully
  recovered and accuracy is *identical* to the zero-fault run
  (determinism under failure).
"""

from __future__ import annotations

import numpy as np

from repro.benchlib.runners import make_distributed_ips
from repro.classify.neighbors import OneNearestNeighbor
from repro.core.config import FaultToleranceConfig, IPSConfig
from repro.core.pipeline import IPSClassifier
from repro.datasets.loader import load_dataset
from repro.datasets.perturb import add_dropout, add_gaussian_noise, add_spikes, time_warp
from repro.distributed.faults import FaultPlan


def test_ablation_robustness(benchmark, report):
    data = load_dataset("GunPoint", seed=0, max_train=24, max_test=60, max_length=120)
    y_test = data.test.classes_[data.test.y]
    ips = IPSClassifier(IPSConfig(k=5, q_n=8, q_s=3, seed=0))
    benchmark.pedantic(lambda: ips.fit_dataset(data.train), rounds=1)
    nn = OneNearestNeighbor("euclidean").fit(data.train.X, data.train.y)

    def nn_acc(X: np.ndarray) -> float:
        return float(np.mean(data.train.classes_[nn.predict(X)] == y_test))

    perturbations = [
        ("clean", lambda X: X),
        ("noise sd=0.2", lambda X: add_gaussian_noise(X, 0.2, seed=1)),
        ("spikes 5%", lambda X: add_spikes(X, rate=0.05, seed=1)),
        ("dropout 20%", lambda X: add_dropout(X, rate=0.2, seed=1)),
        ("warp 8%", lambda X: time_warp(X, max_warp=0.08, seed=1)),
    ]
    rows = []
    for label, perturb in perturbations:
        X_corrupt = perturb(data.test.X)
        rows.append(
            [label, 100.0 * ips.score(X_corrupt, y_test), 100.0 * nn_acc(X_corrupt)]
        )
    report(
        "Ablation: robustness to deployment perturbations (trained clean)",
        ["perturbation", "IPS acc %", "1NN-ED acc %"],
        rows,
        notes="Shape: structural corruption (dropout/warp) barely moves IPS; "
        "additive corruption (noise/spikes) degrades short-window features.",
    )
    by = {row[0]: row[1] for row in rows}
    assert by["dropout 20%"] >= by["clean"] - 10.0
    assert by["warp 8%"] >= by["clean"] - 10.0


def test_ablation_fault_injection(benchmark, report):
    """Accuracy + recovered/lost unit counts vs injected worker-fault rate."""
    data = load_dataset("GunPoint", seed=0, max_train=24, max_test=60, max_length=120)
    y_test = data.test.classes_[data.test.y]
    tolerance = FaultToleranceConfig(max_retries=4, base_delay=0.0, quorum=0.5)

    plans = [
        ("no faults", FaultPlan(seed=11)),
        ("crash 10%", FaultPlan(crash_rate=0.10, seed=11)),
        ("crash 20%", FaultPlan(crash_rate=0.20, seed=11)),
        ("crash 40%", FaultPlan(crash_rate=0.40, seed=11)),
        ("NaN 20%", FaultPlan(nan_rate=0.20, seed=11)),
        ("drop 20%", FaultPlan(drop_rate=0.20, seed=11)),
        ("mixed 10/10/10", FaultPlan(crash_rate=0.10, nan_rate=0.10,
                                     drop_rate=0.10, seed=11)),
    ]

    def run(plan: FaultPlan) -> tuple[float, dict]:
        clf = make_distributed_ips(
            k=5, seed=0, q_n=8, q_s=3,
            fault_plan=plan, fault_tolerance=tolerance,
        )
        clf.fit_dataset(data.train)
        return clf.score(data.test.X, y_test), clf.discovery_result_.extra

    benchmark.pedantic(lambda: run(plans[0][1]), rounds=1)
    accuracies: dict[str, float] = {}
    rows = []
    for label, plan in plans:
        accuracy, extra = run(plan)
        accuracies[label] = 100.0 * accuracy
        rows.append(
            [
                label,
                100.0 * accuracy,
                extra["recovered_units"],
                len(extra["failed_units"]),
                extra["duplicates_dropped"],
            ]
        )
    report(
        "Ablation: fault injection in distributed discovery (retries on)",
        ["fault plan", "IPS acc %", "units recovered", "units lost", "dupes dropped"],
        rows,
        notes="Shape: the retry layer recovers every injected fault, so "
        "accuracy is bit-identical to the zero-fault run (same master "
        "seed); 'units lost' > 0 only once a unit fails all attempts.",
    )
    for label in accuracies:
        assert accuracies[label] == accuracies["no faults"]
