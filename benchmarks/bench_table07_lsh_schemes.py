"""Table VII: IPS accuracy under the three LSH schemes.

The paper compares Hamming, cosine and L2 (p-stable) hashing inside the
DABF on ten datasets: L2 wins, cosine is close, Hamming is the weakest.
Regenerated on a six-dataset panel (time budget) with the same shape
assertion on the panel averages.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import IPSConfig
from repro.core.pipeline import IPSClassifier
from repro.datasets.loader import load_dataset

from _bench_common import CAPS

DATASETS = ("ArrowHead", "BeetleFly", "Coffee", "ECG200", "GunPoint", "ItalyPowerDemand")
SCHEMES = ("hamming", "cosine", "l2")


def _scheme_row(name: str):
    data = load_dataset(name, seed=0, **CAPS)
    y_test = data.test.classes_[data.test.y]
    row: list = [name]
    for scheme in SCHEMES:
        config = IPSConfig(q_n=10, q_s=3, k=5, lsh_scheme=scheme, seed=0)
        clf = IPSClassifier(config).fit_dataset(data.train)
        row.append(100.0 * clf.score(data.test.X, y_test))
    return row


def test_table07_lsh_schemes(benchmark, report):
    from repro.baselines.published import PUBLISHED_TABLE7

    rows = [_scheme_row(name) for name in DATASETS[1:]]
    rows.insert(0, benchmark.pedantic(lambda: _scheme_row(DATASETS[0]), rounds=1))
    matrix = np.array([row[1:] for row in rows], dtype=float)
    means = matrix.mean(axis=0)
    footer = ["panel mean"] + [float(m) for m in means]
    published = [
        [f"(paper) {name}"] + [PUBLISHED_TABLE7[name][s] for s in SCHEMES]
        for name in DATASETS
        if name in PUBLISHED_TABLE7
    ]
    paper_means = np.array(
        [[PUBLISHED_TABLE7[n][s] for s in SCHEMES] for n in PUBLISHED_TABLE7]
    ).mean(axis=0)
    paper_footer = ["(paper) 10-dataset mean"] + [float(m) for m in paper_means]
    report(
        "Table VII: IPS accuracy (%) by LSH scheme (Hamming / Cosine / L2)",
        ["dataset"] + list(SCHEMES),
        rows + [footer] + published + [paper_footer],
        notes="Paper shape: L2 best on average; Hamming weakest.",
    )
    by = dict(zip(SCHEMES, means))
    assert by["l2"] >= by["hamming"] - 2.0, by
