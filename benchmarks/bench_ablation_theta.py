"""Extra ablation: the DABF 3-sigma rule threshold theta.

Section III-C fixes theta = 3 via Chebyshev's inequality (>= 88.89% of any
distribution within 3 sigma). This sweep shows the trade-off the choice
balances: small theta prunes little (slow selection, large pools), large
theta over-prunes (falls back to unpruned motifs for emptied classes).
"""

from __future__ import annotations

from repro.core.config import IPSConfig
from repro.core.pipeline import IPSClassifier
from repro.datasets.loader import load_dataset

from _bench_common import CAPS

DATASETS = ("ArrowHead", "ItalyPowerDemand")
THETA_GRID = (1.0, 2.0, 3.0, 4.0, 6.0)


def _theta_sweep(name: str):
    data = load_dataset(name, seed=0, **CAPS)
    y_test = data.test.classes_[data.test.y]
    rows = []
    for theta in THETA_GRID:
        clf = IPSClassifier(IPSConfig(q_n=10, q_s=3, k=5, theta=theta, seed=0))
        clf.fit_dataset(data.train)
        result = clf.discovery_result_
        # Raw Algorithm-3 removal rate, before the restore-emptied-classes
        # safety net puts motifs back (the post-restore rate saturates).
        report = result.extra["prune_report"]
        raw_rate = 100.0 * report.n_removed / max(result.n_candidates_generated, 1)
        rows.append(
            [
                f"{name} theta={theta}",
                100.0 * clf.score(data.test.X, y_test),
                raw_rate,
                100.0 * result.pruning_rate,
                result.total_time,
            ]
        )
    return rows


def test_ablation_theta(benchmark, report):
    rows = benchmark.pedantic(lambda: _theta_sweep(DATASETS[0]), rounds=1)
    rows = list(rows) + _theta_sweep(DATASETS[1])
    report(
        "Ablation: DABF 3-sigma threshold theta",
        ["config", "accuracy %", "raw pruned %", "net pruned %", "time (s)"],
        rows,
        notes="Shape: raw pruning rate grows with theta (monotone); the net "
        "rate saturates once whole classes get restored; accuracy stays "
        "stable around the paper's theta=3.",
    )
    # Raw Algorithm-3 pruning rate is monotone in theta per dataset.
    for name in DATASETS:
        rates = [row[2] for row in rows if row[0].startswith(name)]
        assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:])), rates
