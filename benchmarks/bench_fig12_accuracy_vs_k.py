"""Figure 12: IPS accuracy vs the shapelet number k.

On ArrowHead, MoteStrain, ShapeletSim and ToeSegmentation1, for k in
{1, 2, 5, 10, 20}: accuracy rises from k=1 and then stabilizes (the paper
reads k=5 off these curves as the default).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import IPSConfig
from repro.core.pipeline import IPSClassifier
from repro.datasets.loader import load_dataset

from _bench_common import CAPS

DATASETS = ("ArrowHead", "MoteStrain", "ShapeletSim", "ToeSegmentation1")
K_GRID = (1, 2, 5, 10, 20)


def _k_sweep(name: str):
    data = load_dataset(name, seed=0, **CAPS)
    y_test = data.test.classes_[data.test.y]
    row: list = [name]
    for k in K_GRID:
        clf = IPSClassifier(IPSConfig(q_n=10, q_s=3, k=k, seed=0))
        clf.fit_dataset(data.train)
        row.append(100.0 * clf.score(data.test.X, y_test))
    return row


def test_fig12_accuracy_vs_k(benchmark, report):
    rows = [_k_sweep(name) for name in DATASETS[1:]]
    rows.insert(0, benchmark.pedantic(lambda: _k_sweep(DATASETS[0]), rounds=1))
    report(
        "Fig. 12: IPS accuracy (%) vs shapelet number k",
        ["dataset"] + [f"k={k}" for k in K_GRID],
        rows,
        notes="Paper shape: accuracy rises from k=1, then stabilizes by k~5.",
    )
    for row in rows:
        accs = np.array(row[1:], dtype=float)
        # Later-k accuracy should not collapse below the k=1 start.
        assert accs[2:].max() >= accs[0] - 10.0, row
