"""Figure 11: the critical-difference diagram over the 13 methods.

Friedman test over the 46x13 Table VI matrix (p = 0.00 in the paper, so
the null is rejected), then the pairwise Wilcoxon-Holm post-hoc grouping.
The paper's reading: IPS significantly outperforms everything except COTE,
COTE-IPS, ResNet, ST and BSPCOVER.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.published import accuracy_matrix
from repro.stats.cd_diagram import cd_groups, render_cd
from repro.stats.friedman import friedman_test


def test_fig11_cd_diagram(benchmark, report, capsys):
    values, _datasets, methods = accuracy_matrix()
    result = benchmark.pedantic(lambda: friedman_test(values), rounds=1)
    assert result.p_value < 0.05, "the paper rejects the Friedman null"

    mean_ranks, groups = cd_groups(values, method="wilcoxon-holm")
    order = np.argsort(mean_ranks)
    rows = [
        [i + 1, methods[idx], float(mean_ranks[idx])]
        for i, idx in enumerate(order)
    ]
    report(
        "Fig. 11: average ranks (Friedman p = %.2e)" % result.p_value,
        ["rank", "method", "avg rank"],
        rows,
        precision=3,
    )
    diagram = render_cd(methods, values, method="wilcoxon-holm")
    with capsys.disabled():
        print(diagram)
        print()

    # The paper's grouping claim: IPS shares a clique with the ensembles.
    ips_sorted_pos = [methods[i] for i in order].index("IPS")
    in_top_group = any(lo <= ips_sorted_pos <= hi for lo, hi in groups)
    assert in_top_group
    ranked = [methods[i] for i in order]
    assert ranked[0] == "COTE-IPS"
    assert ranked.index("IPS") == 3
    assert ranked[-1] == "BASE"
