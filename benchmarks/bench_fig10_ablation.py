"""Figure 10: the DABF and DT & CR ablations across the dataset panel.

(a) pruning time with vs without DABF — every dataset lands in the
"naive slower" half (the paper's upper triangle);
(b) top-k selection time with vs without DT & CR — same shape;
(c) accuracy with vs without DT & CR — approximately unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.benchlib.timing import timed
from repro.core.config import IPSConfig
from repro.core.pipeline import IPSClassifier
from repro.core.utility import score_candidates_brute, score_candidates_dt
from repro.datasets.loader import load_dataset
from repro.filters.dabf import DABF, NaivePruner
from repro.instanceprofile.candidates import generate_candidates
from repro.instanceprofile.sampling import resolve_lengths

from _bench_common import CAPS, SWEEP_DATASETS

PANEL = SWEEP_DATASETS[:8]


def _ablation_row(name: str):
    from repro.core.pipeline import restore_emptied_classes

    data = load_dataset(name, seed=0, **CAPS)
    train = data.train
    lengths = resolve_lengths(train.series_length, (0.2, 0.4))
    pool = generate_candidates(
        train, q_n=12, q_s=3, lengths=lengths,
        motifs_per_profile=2, discords_per_profile=2, seed=0,
    )

    naive = NaivePruner(pool, seed=0)
    _, t_naive = timed(lambda: naive.prune(pool))
    dabf, t_build = timed(lambda: DABF.build(pool, seed=0))
    (pruned, _report_), t_prune = timed(lambda: dabf.prune(pool))
    t_dabf = t_build + t_prune
    pruned = restore_emptied_classes(pool, pruned)

    _, t_brute = timed(
        lambda: [
            score_candidates_brute(train, pruned, label, use_cr=False)
            for label in range(train.n_classes)
        ]
    )
    _, t_dtcr = timed(
        lambda: [
            score_candidates_dt(train, pruned, label, dabf)
            for label in range(train.n_classes)
        ]
    )

    y_test = data.test.classes_[data.test.y]
    acc_with = 100.0 * IPSClassifier(
        IPSConfig(q_n=8, q_s=3, k=5, use_dt_cr=True, seed=0)
    ).fit_dataset(train).score(data.test.X, y_test)
    acc_without = 100.0 * IPSClassifier(
        IPSConfig(q_n=8, q_s=3, k=5, use_dt_cr=False, seed=0)
    ).fit_dataset(train).score(data.test.X, y_test)
    return [name, t_naive, t_dabf, t_brute, t_dtcr, acc_without, acc_with]


def test_fig10_ablation(benchmark, report):
    rows = [_ablation_row(name) for name in PANEL[1:]]
    rows.insert(0, benchmark.pedantic(lambda: _ablation_row(PANEL[0]), rounds=1))
    report(
        "Fig. 10: (a) prune naive vs DABF (s); (b) top-k brute vs DT+CR (s); "
        "(c) accuracy w/o vs w/ DT+CR (%)",
        [
            "dataset",
            "prune naive",
            "prune DABF",
            "topk brute",
            "topk DT+CR",
            "acc w/o",
            "acc w/",
        ],
        rows,
        precision=3,
        notes=(
            "Paper shape: every dataset in the upper triangle for (a) and "
            "(b); accuracies in (c) nearly identical."
        ),
    )
    upper_a = sum(1 for row in rows if row[1] > row[2])
    upper_b = sum(1 for row in rows if row[3] > row[4])
    assert upper_a >= len(rows) - 1, "naive pruning should be slower"
    assert upper_b >= len(rows) - 1, "brute top-k should be slower"
    acc_gap = np.mean([abs(row[5] - row[6]) for row in rows])
    assert acc_gap < 25.0
