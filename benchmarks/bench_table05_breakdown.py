"""Table V: runtime breakdown of IPS's three stages.

Per dataset: candidate generation; pruning without DABF (naive quadratic)
vs with DABF; top-k selection without DT+CR (brute-force utilities) vs
with. The paper's shape: DABF and DT+CR each save at least ~50% of their
stage.
"""

from __future__ import annotations

from repro.benchlib.timing import timed
from repro.core.utility import score_candidates_brute, score_candidates_dt
from repro.datasets.loader import load_dataset
from repro.filters.dabf import DABF, NaivePruner
from repro.instanceprofile.candidates import generate_candidates
from repro.instanceprofile.sampling import resolve_lengths

from _bench_common import CAPS

# The paper uses ArrowHead, Computers, ShapeletSim, UWaveGestureLibraryY.
DATASETS = ("ArrowHead", "Computers", "ShapeletSim", "UWaveGestureLibraryY")


def _breakdown_row(name: str):
    from repro.core.pipeline import restore_emptied_classes

    data = load_dataset(name, seed=0, **CAPS)
    train = data.train
    lengths = resolve_lengths(train.series_length, (0.1, 0.2, 0.3))
    pool, t_generate = timed(
        lambda: generate_candidates(
            train, q_n=15, q_s=3, lengths=lengths,
            motifs_per_profile=2, discords_per_profile=2, seed=0,
        )
    )
    naive = NaivePruner(pool, seed=0)
    _, t_naive = timed(lambda: naive.prune(pool))
    dabf, t_build = timed(lambda: DABF.build(pool, seed=0))
    pruned, t_dabf_prune = timed(lambda: dabf.prune(pool))
    t_dabf = t_build + t_dabf_prune
    # Keep the scoring comparison meaningful when pruning empties a class.
    pruned_pool = restore_emptied_classes(pool, pruned[0])
    _, t_brute = timed(
        lambda: [
            score_candidates_brute(train, pruned_pool, label, use_cr=False)
            for label in range(train.n_classes)
        ]
    )
    _, t_dtcr = timed(
        lambda: [
            score_candidates_dt(train, pruned_pool, label, dabf)
            for label in range(train.n_classes)
        ]
    )
    return [name, t_generate, t_naive, t_dabf, t_brute, t_dtcr]


def test_table05_breakdown(benchmark, report):
    rows = [_breakdown_row(name) for name in DATASETS[1:]]
    rows.insert(0, benchmark.pedantic(lambda: _breakdown_row(DATASETS[0]), rounds=1))
    report(
        "Table V: stage runtime (s): candidate gen; pruning w/o vs w/ DABF; "
        "top-k w/o vs w/ DT+CR",
        ["dataset", "cand gen", "prune naive", "prune DABF", "no DT+CR", "DT+CR"],
        rows,
        precision=3,
        notes="Paper shape: DABF and DT+CR each save >= ~50% of their stage.",
    )
    for row in rows:
        assert row[3] < row[2], f"{row[0]}: DABF not faster than naive"
        assert row[5] < row[4], f"{row[0]}: DT+CR not faster than brute"
