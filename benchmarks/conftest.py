"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at
laptop scale (dataset sizes are capped; see DESIGN.md). Tables are printed
straight to the terminal (bypassing capture) and appended to
``benchmarks/results/`` so ``bench_output.txt`` contains every row.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.benchlib.tables import format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def report(capsys):
    """Print a table uncaptured and persist it under benchmarks/results/."""

    def _report(title: str, headers, rows, precision: int = 2, notes: str = ""):
        text = format_table(headers, rows, precision=precision, title=title)
        if notes:
            text = f"{text}\n{notes}"
        with capsys.disabled():
            print()
            print(text)
            print()
        RESULTS_DIR.mkdir(exist_ok=True)
        slug = "".join(c if c.isalnum() else "_" for c in title.lower())[:60]
        (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")

    return _report
