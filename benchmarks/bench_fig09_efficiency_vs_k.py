"""Figure 9: runtime and accuracy vs the shapelet number k.

On BeetleFly and TwoLeadECG, for k in {1, 2, 5, 10, 20}: BASE and IPS
runtimes grow roughly linearly and stay close to each other; BSPCOVER is
clearly slower; BASE's accuracy trails IPS's.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.bspcover import BSPCover
from repro.baselines.mp_base import MPBaseline
from repro.benchlib.timing import timed
from repro.core.config import IPSConfig
from repro.core.pipeline import IPSClassifier
from repro.datasets.loader import load_dataset

from _bench_common import SMALL_CAPS

DATASETS = ("BeetleFly", "TwoLeadECG")
K_GRID = (1, 2, 5, 10, 20)


def _sweep(name: str):
    data = load_dataset(name, seed=0, **SMALL_CAPS)
    y_test = data.test.classes_[data.test.y]
    rows = []
    for k in K_GRID:
        base = MPBaseline(k=k, seed=0)
        _, t_base = timed(lambda: base.fit_dataset(data.train))
        acc_base = 100.0 * base.score(data.test.X, y_test)
        ips = IPSClassifier(IPSConfig(q_n=10, q_s=3, k=k, seed=0))
        _, t_ips = timed(lambda: ips.fit_dataset(data.train))
        acc_ips = 100.0 * ips.score(data.test.X, y_test)
        bsp = BSPCover(k=k, seed=0)
        _, t_bsp = timed(lambda: bsp.fit_dataset(data.train))
        acc_bsp = 100.0 * bsp.score(data.test.X, y_test)
        rows.append(
            [f"{name} k={k}", t_base, t_ips, t_bsp, acc_base, acc_ips, acc_bsp]
        )
    return rows


def test_fig09_efficiency_vs_k(benchmark, report):
    all_rows = benchmark.pedantic(lambda: _sweep(DATASETS[0]), rounds=1)
    all_rows = list(all_rows) + _sweep(DATASETS[1])
    report(
        "Fig. 9: time (s) and accuracy (%) vs k for BASE / IPS / BSPCOVER",
        ["dataset/k", "t BASE", "t IPS", "t BSP", "acc BASE", "acc IPS", "acc BSP"],
        all_rows,
        precision=2,
        notes=(
            "Paper shape: BASE and IPS times stay close and grow slowly "
            "with k; BSPCOVER is the slowest; IPS accuracy >= BASE."
        ),
    )
    times_bsp = np.array([row[3] for row in all_rows])
    times_ips = np.array([row[2] for row in all_rows])
    assert times_bsp.mean() > times_ips.mean()
    acc_ips = np.mean([row[5] for row in all_rows])
    acc_base = np.mean([row[4] for row in all_rows])
    assert acc_ips >= acc_base - 5.0
