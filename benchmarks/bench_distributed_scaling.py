"""Extension benchmark: distributed candidate generation scaling.

The paper's future work; measures the wall-clock of the distributed
discovery under the serial, thread, and process executors and asserts the
results stay bit-identical (the determinism contract of
``repro.distributed``).
"""

from __future__ import annotations

import numpy as np

from repro.benchlib.timing import timed
from repro.core.config import IPSConfig
from repro.datasets.loader import load_dataset
from repro.distributed import (
    DistributedIPS,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)


def test_distributed_scaling(benchmark, report):
    data = load_dataset("ArrowHead", seed=0, max_train=24, max_test=10, max_length=150)
    config = IPSConfig(q_n=12, q_s=3, k=5, seed=0)

    serial = DistributedIPS(config, SerialExecutor())
    result_serial = benchmark.pedantic(lambda: serial.discover(data.train), rounds=1)
    t_serial = result_serial.total_time

    rows = [["serial", 1, t_serial, result_serial.n_candidates_generated]]
    reference = result_serial.shapelets
    for name, executor, workers in (
        ("threads", ThreadExecutor(max_workers=4), 4),
        ("processes", ProcessExecutor(max_workers=2), 2),
    ):
        result, elapsed = timed(
            lambda executor=executor: DistributedIPS(config, executor).discover(
                data.train
            )
        )
        rows.append([name, workers, elapsed, result.n_candidates_generated])
        identical = all(
            np.array_equal(a.values, b.values)
            for a, b in zip(reference, result.shapelets)
        )
        assert identical, f"{name} diverged from the serial reference"
    report(
        "Extension: distributed discovery across executors (identical results)",
        ["executor", "workers", "time (s)", "candidates"],
        rows,
        notes="Determinism contract: all executors produce the same shapelets.",
    )
