"""Table VI: accuracy of the methods across datasets.

Two parts, mirroring how the paper built its table:

1. **Measured** — every runnable method (IPS, BASE, BSPCOVER, FS, LTS, ST,
   SD, RotF, 1NN-ED, 1NN-DTW) evaluated on the representative dataset
   panel at laptop scale.
2. **Published reference** — the full 46x13 matrix footer (best-accuracy
   counts and IPS 1-to-1 W/D/L) recomputed from the constants in
   :mod:`repro.baselines.published`, exactly as the paper reports them.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.published import accuracy_matrix
from repro.benchlib.runners import evaluate_method
from repro.datasets.loader import load_dataset
from repro.stats.ranking import average_ranks, best_counts, wins_draws_losses

from _bench_common import CAPS, SWEEP_DATASETS

METHODS = (
    "IPS", "BASE", "BSPCOVER", "FS", "LTS", "ELIS", "ST", "SD",
    "RotF", "TSF", "BOP", "1NN-ED", "1NN-DTW",
)

_METHOD_OVERRIDES: dict[str, dict] = {
    "IPS": {"q_n": 10, "q_s": 3},
    "LTS": {"epochs": 150},
    "ELIS": {"epochs": 150},
    "ST": {"max_candidates": 150},
}


def _dataset_row(name: str):
    data = load_dataset(name, seed=0, **CAPS)
    row: list = [name]
    for method in METHODS:
        overrides = _METHOD_OVERRIDES.get(method, {})
        result = evaluate_method(method, data, k=5, seed=0, **overrides)
        row.append(100.0 * result.accuracy)
    return row


def test_table06_accuracy_measured(benchmark, report):
    rows = [_dataset_row(name) for name in SWEEP_DATASETS[1:]]
    rows.insert(0, benchmark.pedantic(lambda: _dataset_row(SWEEP_DATASETS[0]), rounds=1))
    matrix = np.array([row[1:] for row in rows], dtype=float)
    ranks = average_ranks(matrix)
    footer = ["avg rank"] + [float(r) for r in ranks]
    report(
        "Table VI (measured): accuracy (%) of runnable methods on the panel",
        ["dataset"] + list(METHODS),
        rows + [footer],
        precision=2,
        notes="Shape to check: IPS ranks among the best; BASE near the bottom.",
    )
    by_method = dict(zip(METHODS, ranks))
    assert by_method["IPS"] < by_method["BASE"], "IPS must out-rank BASE"


def test_table06_published_footer(benchmark, report):
    values, _datasets, methods = accuracy_matrix()
    counts = benchmark.pedantic(lambda: best_counts(values), rounds=1)
    ips = methods.index("IPS")
    wdl = wins_draws_losses(values, reference=ips)
    ranks = average_ranks(values)
    rows = [
        [m, int(c), float(r), f"{w}/{d}/{l}"]
        for m, c, r, (w, d, l) in zip(methods, counts, ranks, wdl)
    ]
    report(
        "Table VI (published footer): best-acc counts, avg rank, IPS 1-to-1 W/D/L",
        ["method", "best acc", "avg rank", "IPS W/D/L vs"],
        rows,
        precision=3,
        notes="Paper: IPS ranked 4th overall; best on 9 datasets.",
    )
    order = [methods[i] for i in np.argsort(ranks)]
    assert order.index("IPS") == 3
