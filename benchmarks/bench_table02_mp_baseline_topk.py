"""Table II: accuracy of the MP baseline's top-k shapelets vs 1NN-ED/DTW.

The paper's motivation table: on ArrowHead, MoteStrain, ShapeletSim and
ToeSegmentation1, BASE with k from 1 to 100 stays below simple 1NN
baselines (issues 1 and 2). Regenerated here for k in {1, 2, 5, 10, 20}
at laptop scale; the published rows are printed alongside for shape
comparison.
"""

from __future__ import annotations

from repro.baselines.mp_base import MPBaseline
from repro.baselines.published import PUBLISHED_TABLE2
from repro.classify.neighbors import OneNearestNeighbor
from repro.datasets.loader import load_dataset

from _bench_common import CAPS

DATASETS = ("ArrowHead", "MoteStrain", "ShapeletSim", "ToeSegmentation1")
K_GRID = (1, 2, 5, 10, 20)


def _accuracy_row(name: str):
    data = load_dataset(name, seed=0, **CAPS)
    y_test = data.test.classes_[data.test.y]
    row = [name]
    for k in K_GRID:
        model = MPBaseline(k=k, seed=0).fit_dataset(data.train)
        row.append(100.0 * model.score(data.test.X, y_test))
    ed = OneNearestNeighbor("euclidean").fit(data.train.X, data.train.y)
    row.append(100.0 * ed.score(data.test.X, data.test.y))
    dtw = OneNearestNeighbor("dtw", band=max(3, data.train.series_length // 10))
    dtw.fit(data.train.X, data.train.y)
    row.append(100.0 * dtw.score(data.test.X, data.test.y))
    return row


def test_table02_mp_baseline_topk(benchmark, report):
    rows = [_accuracy_row(name) for name in DATASETS[1:]]
    first = benchmark.pedantic(
        lambda: _accuracy_row(DATASETS[0]), rounds=1, iterations=1
    )
    rows.insert(0, first)
    headers = ["dataset"] + [f"k={k}" for k in K_GRID] + ["1NN-ED", "1NN-DTW"]
    published = [
        [f"(paper) {name}"]
        + [PUBLISHED_TABLE2[name][f"k{k}"] for k in K_GRID]
        + [PUBLISHED_TABLE2[name]["ED"], PUBLISHED_TABLE2[name]["DTW"]]
        for name in DATASETS
    ]
    report(
        "Table II: BASE top-k accuracy (%) vs 1NN baselines (measured, then paper)",
        headers,
        rows + published,
        notes="Shape to check: no k makes BASE dominate the 1NN baselines.",
    )
    assert len(rows) == 4
