"""Shared constants for the benchmark harness (caps, dataset lists)."""

from __future__ import annotations

#: Default laptop-scale caps applied to every dataset load.
CAPS = dict(max_train=20, max_test=40, max_length=120)

#: Smaller caps for the expensive sweeps (Table IV / Fig. 9).
SMALL_CAPS = dict(max_train=16, max_test=30, max_length=100)

#: Representative subset used when a full 46-dataset sweep is infeasible
#: in the time budget; spans the paper's Image / Sensor / Simulated /
#: Motion / ECG / Device categories.
SWEEP_DATASETS = (
    "ArrowHead",
    "BeetleFly",
    "CBF",
    "Coffee",
    "ECG200",
    "GunPoint",
    "ItalyPowerDemand",
    "ShapeletSim",
    "SyntheticControl",
    "ToeSegmentation1",
)

#: The ten datasets of the paper's Table III / Table VII.
TEN_DATASETS = (
    "ArrowHead",
    "BeetleFly",
    "Coffee",
    "ECG200",
    "FordA",
    "GunPoint",
    "ItalyPowerDemand",
    "Meat",
    "Symbols",
    "ToeSegmentation1",
)
