# Convenience targets for the IPS reproduction.

PYTHON ?= python

.PHONY: install test verify-robustness verify-perf verify-obs verify-serve verify-streaming verify-campaign bench examples smoke clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Robustness suite: retry/backoff/quorum/checkpoint + fault injection,
# data contracts & repairs, degenerate-input corpus, anytime budgets —
# plus a live deadline-budget smoke through the CLI.
verify-robustness:
	PYTHONPATH=src $(PYTHON) -m pytest -q -m robustness tests/
	PYTHONPATH=src $(PYTHON) -m repro run ItalyPowerDemand --method IPS \
		--max-train 16 --max-test 20 --k 3 --budget-seconds 0.0

# Kernel-engine gate: batched-vs-scalar equivalence and multi-backend
# tests, then the micro-benchmark smoke (100 queries x 50 series) and
# the per-backend sweep. Writes machine-keyed results (including the
# "backends" section) to BENCH_kernels.json; fails if the batched path
# is slower than the scalar loops, if a float64 backend is not
# bit-identical to the reference, if float32 exceeds its error bound,
# or if the persistent spectra store records no cross-run disk hits.
verify-perf:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/test_kernels.py tests/test_kernel_backends.py
	PYTHONPATH=src $(PYTHON) -m repro.benchlib.perfbench

# Observability gate: span-tree/metrics/manifest/JSONL + telemetry
# tests (the `obs` marker), then the overhead benchmark — counters mode
# (the default) must stay within 2% of off mode on a full IPS.discover,
# and the telemetry-instrumented serve path within 2% of (and
# bit-identical to) the bare one. Writes the "observability" section of
# BENCH_kernels.json and appends the run to BENCH_history.jsonl, then
# smoke-checks `repro obs bench-diff` against the committed BENCH files.
verify-obs:
	PYTHONPATH=src $(PYTHON) -m pytest -q -m obs tests/
	PYTHONPATH=src $(PYTHON) -m repro.benchlib.perfbench --obs-only
	PYTHONPATH=src $(PYTHON) -m repro obs bench-diff --kinds kernels

# Serving gate: artifact/queue/breaker unit tests plus the chaos suite
# (crash, hang, slow, corrupt payload, corrupt artifact, overload), then
# the load generator — p50/p99 latency and series/sec written to
# BENCH_serve.json with a 3x regression gate against the previous run.
verify-serve:
	PYTHONPATH=src $(PYTHON) -m pytest -q -m serve tests/
	PYTHONPATH=src $(PYTHON) -m repro.benchlib.loadgen

# Streaming gate: matcher/transform/early-classifier unit + property
# tests and the streaming-session suite, then the chunked-replay
# benchmark — per-append p50/p99 latency, early-emission fraction
# (must be > 0 at the calibrated threshold), final-label agreement
# with the batch path (must be 100%), and the stream/batch throughput
# ratio written to BENCH_streaming.json with a 3x regression gate.
verify-streaming:
	PYTHONPATH=src $(PYTHON) -m pytest -q -m streaming tests/
	PYTHONPATH=src $(PYTHON) -m repro.benchlib.streambench

# Campaign gate: the kill/resume chaos suite (campaign SIGKILL'd at
# random cell boundaries and mid-cell, resumed under crash/hang/slow
# faults, results frame bit-identical to an uninterrupted run), then a
# live CLI smoke: run a 2x2x2 matrix in two halves and report it.
verify-campaign:
	PYTHONPATH=src $(PYTHON) -m pytest -q -m campaign tests/
	rm -rf .campaign-smoke
	PYTHONPATH=src $(PYTHON) -m repro campaign run --out .campaign-smoke \
		--datasets CBF,ItalyPowerDemand --methods 1NN-ED,BOP \
		--scenarios clean,noise --max-train 12 --max-test 20 \
		--max-length 80 --max-cells 3
	PYTHONPATH=src $(PYTHON) -m repro campaign resume --dir .campaign-smoke
	PYTHONPATH=src $(PYTHON) -m repro campaign status --dir .campaign-smoke
	PYTHONPATH=src $(PYTHON) -m repro campaign report --dir .campaign-smoke
	rm -rf .campaign-smoke

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for script in examples/*.py; do \
		echo "=== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

smoke:
	$(PYTHON) -m repro run ItalyPowerDemand --method IPS --max-train 16 --max-test 20 --k 3

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
